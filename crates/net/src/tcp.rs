//! The TCP state machine: handshake, reliable bidirectional transfer,
//! out-of-order reassembly, retransmission, flow control, teardown.
//!
//! One [`TcpConn`] is one connection endpoint. The stack feeds it
//! received segments ([`TcpConn::on_segment`]) and pumps it for output
//! ([`TcpConn::poll`]); the socket layer moves application bytes in and
//! out ([`TcpConn::send`], [`TcpConn::take_ready`]). Time is the
//! machine's cycle clock, so retransmission behaviour is deterministic.
//!
//! Deliberate simplifications (documented in DESIGN.md): no congestion
//! control, no SACK, no delayed ACKs, fixed RTO — none of which the
//! FlexOS evaluation exercises; flow control, loss recovery and ordering
//! are implemented in full.

use crate::wire::{TcpFlags, TcpHeader, MSS};
use std::collections::{BTreeMap, VecDeque};

/// A byte FIFO over a flat `Vec`: bulk `extend_from_slice` on push, one
/// `memcpy` on pop, amortized compaction of the dead prefix. Replaces
/// `VecDeque<u8>` on the per-segment hot path, where the deque's
/// per-element iteration was the simulator's top host-time cost.
#[derive(Debug, Clone, Default)]
struct ByteFifo {
    buf: Vec<u8>,
    head: usize,
}

impl ByteFifo {
    fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn extend(&mut self, data: &[u8]) {
        if self.head > 0 && self.head * 2 >= self.buf.len() {
            // Dead prefix dominates: slide the live bytes down (memmove)
            // so the buffer cannot grow without bound.
            self.buf.drain(..self.head);
            self.head = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Removes and returns the first `n` queued bytes (clamped).
    fn take(&mut self, n: usize) -> Vec<u8> {
        let n = n.min(self.len());
        let out = self.buf[self.head..self.head + n].to_vec();
        self.head += n;
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        }
        out
    }
}

/// `a < b` in sequence space.
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Connection states (RFC 793 names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Active open sent, awaiting SYN-ACK.
    SynSent,
    /// Passive open got SYN, sent SYN-ACK, awaiting ACK.
    SynRcvd,
    /// Data flows.
    Established,
    /// We closed first; FIN sent, not yet acked.
    FinWait1,
    /// Our FIN acked; awaiting peer FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// We closed after peer; FIN sent, awaiting its ACK.
    LastAck,
    /// Both FINs crossed; awaiting ACK of ours.
    Closing,
    /// Done (2MSL wait collapsed — simulation has no stray duplicates
    /// after close).
    TimeWait,
    /// Fully closed / reset.
    Closed,
}

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size.
    pub mss: usize,
    /// Receive-buffer capacity we advertise from.
    pub rcv_wnd: u32,
    /// Retransmission timeout in machine cycles (fixed RTO).
    pub rto_cycles: u64,
    /// Upper bound on unsent application bytes buffered.
    pub max_tx_buf: usize,
    /// Retries before the connection is declared dead.
    pub max_retries: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            mss: MSS,
            rcv_wnd: 65535,
            // 10 ms at 2.1 GHz — generous against the simulated RTT.
            rto_cycles: 21_000_000,
            max_tx_buf: 256 * 1024,
            max_retries: 8,
        }
    }
}

/// An outgoing segment (the stack adds IP/Ethernet).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentOut {
    /// TCP header.
    pub hdr: TcpHeader,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

#[derive(Debug, Clone)]
struct RetxSeg {
    seq: u32,
    data: Vec<u8>,
    fin: bool,
    sent_at: u64,
    retries: u32,
}

impl RetxSeg {
    fn seq_len(&self) -> u32 {
        self.data.len() as u32 + u32::from(self.fin)
    }
}

/// One TCP connection endpoint.
#[derive(Debug)]
pub struct TcpConn {
    /// Current state.
    pub state: TcpState,
    /// Our port.
    pub local_port: u16,
    /// Peer port.
    pub remote_port: u16,
    cfg: TcpConfig,

    snd_una: u32,
    snd_nxt: u32,
    rcv_nxt: u32,
    snd_wnd: u32,

    tx: ByteFifo,
    retx: VecDeque<RetxSeg>,
    rx_ready: ByteFifo,
    ooo: BTreeMap<u32, Vec<u8>>,

    need_ack: bool,
    app_closed: bool,
    fin_queued: bool,
    /// Window last advertised to the peer (for window-update ACKs).
    last_adv_wnd: u16,
    /// Statistics: segments retransmitted.
    pub retransmits: u64,
}

impl TcpConn {
    fn new(state: TcpState, local_port: u16, remote_port: u16, iss: u32, cfg: TcpConfig) -> Self {
        let cfg_rcv_wnd_u16 = cfg.rcv_wnd.min(65535) as u16;
        Self {
            state,
            local_port,
            remote_port,
            cfg,
            snd_una: iss,
            snd_nxt: iss,
            rcv_nxt: 0,
            snd_wnd: 0,
            tx: ByteFifo::default(),
            retx: VecDeque::new(),
            rx_ready: ByteFifo::default(),
            ooo: BTreeMap::new(),
            need_ack: false,
            app_closed: false,
            fin_queued: false,
            last_adv_wnd: cfg_rcv_wnd_u16,
            retransmits: 0,
        }
    }

    fn window(&self) -> u16 {
        let used = self.rx_ready.len() as u32;
        self.cfg.rcv_wnd.saturating_sub(used).min(65535) as u16
    }

    fn hdr(&self, flags: TcpFlags, seq: u32) -> TcpHeader {
        TcpHeader {
            src_port: self.local_port,
            dst_port: self.remote_port,
            seq,
            ack: if flags.ack { self.rcv_nxt } else { 0 },
            flags,
            window: self.window(),
        }
    }

    /// Active open: returns the endpoint and its SYN.
    pub fn connect(
        local_port: u16,
        remote_port: u16,
        iss: u32,
        cfg: TcpConfig,
    ) -> (Self, SegmentOut) {
        let mut c = Self::new(TcpState::SynSent, local_port, remote_port, iss, cfg);
        let syn = SegmentOut {
            hdr: c.hdr(TcpFlags::SYN, iss),
            payload: Vec::new(),
        };
        c.snd_nxt = iss.wrapping_add(1);
        // Track the SYN for retransmission (zero data, consumes 1 seq).
        c.retx.push_back(RetxSeg {
            seq: iss,
            data: Vec::new(),
            fin: false,
            sent_at: 0,
            retries: 0,
        });
        (c, syn)
    }

    /// Passive open from a received SYN: returns the endpoint and its
    /// SYN-ACK.
    pub fn accept(
        local_port: u16,
        remote_port: u16,
        iss: u32,
        peer_syn: &TcpHeader,
        cfg: TcpConfig,
    ) -> (Self, SegmentOut) {
        let mut c = Self::new(TcpState::SynRcvd, local_port, remote_port, iss, cfg);
        c.rcv_nxt = peer_syn.seq.wrapping_add(1);
        c.snd_wnd = u32::from(peer_syn.window);
        let syn_ack = SegmentOut {
            hdr: c.hdr(TcpFlags::SYN_ACK, iss),
            payload: Vec::new(),
        };
        c.snd_nxt = iss.wrapping_add(1);
        c.retx.push_back(RetxSeg {
            seq: iss,
            data: Vec::new(),
            fin: false,
            sent_at: 0,
            retries: 0,
        });
        (c, syn_ack)
    }

    /// Whether the connection is in a state where data flows.
    pub fn is_established(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1 | TcpState::FinWait2
        )
    }

    /// Whether the connection is finished.
    pub fn is_closed(&self) -> bool {
        matches!(self.state, TcpState::Closed | TcpState::TimeWait)
    }

    /// Whether the peer has closed its direction and everything the peer
    /// sent has been consumed (EOF condition for `recv`).
    pub fn at_eof(&self) -> bool {
        self.rx_ready.is_empty()
            && matches!(
                self.state,
                TcpState::CloseWait
                    | TcpState::LastAck
                    | TcpState::Closing
                    | TcpState::TimeWait
                    | TcpState::Closed
            )
    }

    /// Queues application data; returns bytes accepted (bounded by the
    /// transmit buffer).
    pub fn send(&mut self, data: &[u8]) -> usize {
        if self.app_closed
            || !matches!(
                self.state,
                TcpState::Established | TcpState::CloseWait | TcpState::SynSent | TcpState::SynRcvd
            )
        {
            return 0;
        }
        let room = self.cfg.max_tx_buf - self.tx.len().min(self.cfg.max_tx_buf);
        let n = data.len().min(room);
        self.tx.extend(&data[..n]);
        n
    }

    /// Bytes queued but not yet segmented.
    pub fn tx_pending(&self) -> usize {
        self.tx.len() + self.retx.iter().map(|r| r.data.len()).sum::<usize>()
    }

    /// Takes up to `max` in-order received bytes.
    pub fn take_ready(&mut self, max: usize) -> Vec<u8> {
        self.rx_ready.take(max)
    }

    /// Bytes ready for the application.
    pub fn ready_len(&self) -> usize {
        self.rx_ready.len()
    }

    /// Application close: a FIN is emitted once the transmit queue
    /// drains.
    pub fn close(&mut self) {
        self.app_closed = true;
    }

    /// Whether the application has closed its sending direction.
    pub fn app_closed(&self) -> bool {
        self.app_closed
    }

    /// Transmit-buffer room available to `send` (the write-readiness
    /// condition the event queue reports).
    pub fn tx_room(&self) -> usize {
        self.cfg.max_tx_buf - self.tx.len().min(self.cfg.max_tx_buf)
    }

    /// Processes a received segment; returns any immediate responses
    /// (further output comes from [`TcpConn::poll`]). Allocating
    /// convenience wrapper around [`TcpConn::on_segment_into`].
    pub fn on_segment(&mut self, hdr: &TcpHeader, payload: &[u8], now: u64) -> Vec<SegmentOut> {
        let mut out = Vec::new();
        self.on_segment_into(hdr, payload, now, &mut out);
        out
    }

    /// [`TcpConn::on_segment`] with a caller-owned output vector:
    /// responses are appended to `out` (existing entries untouched), so
    /// the per-segment hot path reuses one scratch allocation.
    pub fn on_segment_into(
        &mut self,
        hdr: &TcpHeader,
        payload: &[u8],
        now: u64,
        out: &mut Vec<SegmentOut>,
    ) {
        let start = out.len();
        if hdr.flags.rst {
            self.state = TcpState::Closed;
            return;
        }
        self.snd_wnd = u32::from(hdr.window);

        // --- handshake ---------------------------------------------------
        match self.state {
            TcpState::SynSent => {
                if hdr.flags.syn && hdr.flags.ack && hdr.ack == self.snd_nxt {
                    self.rcv_nxt = hdr.seq.wrapping_add(1);
                    self.snd_una = hdr.ack;
                    self.retx.clear(); // the SYN is acked
                    self.state = TcpState::Established;
                    self.need_ack = true;
                }
                self.flush_ack_into(out, start);
                return;
            }
            TcpState::SynRcvd => {
                if hdr.flags.ack && hdr.ack == self.snd_nxt {
                    self.snd_una = hdr.ack;
                    self.retx.clear();
                    self.state = TcpState::Established;
                    // fall through: the ACK may carry data.
                } else if hdr.flags.syn {
                    // Duplicate SYN: re-answer with SYN-ACK.
                    out.push(SegmentOut {
                        hdr: self.hdr(TcpFlags::SYN_ACK, self.snd_una),
                        payload: Vec::new(),
                    });
                    return;
                }
            }
            TcpState::Closed | TcpState::TimeWait => {
                return;
            }
            _ => {}
        }

        // --- ACK processing -----------------------------------------------
        if hdr.flags.ack && seq_lt(self.snd_una, hdr.ack) && seq_le(hdr.ack, self.snd_nxt) {
            self.snd_una = hdr.ack;
            // Drop fully-acked retransmission entries; trim partial ones.
            while let Some(front) = self.retx.front() {
                let end = front.seq.wrapping_add(front.seq_len());
                if seq_le(end, self.snd_una) {
                    self.retx.pop_front();
                } else if seq_lt(front.seq, self.snd_una) {
                    let front = self.retx.front_mut().expect("nonempty");
                    let cut = self.snd_una.wrapping_sub(front.seq) as usize;
                    front.data.drain(..cut.min(front.data.len()));
                    front.seq = self.snd_una;
                    break;
                } else {
                    break;
                }
            }
            // Our FIN acked?
            if self.fin_queued && self.snd_una == self.snd_nxt {
                match self.state {
                    TcpState::FinWait1 => self.state = TcpState::FinWait2,
                    TcpState::Closing => self.state = TcpState::TimeWait,
                    TcpState::LastAck => self.state = TcpState::Closed,
                    _ => {}
                }
            }
        }

        // --- payload ---------------------------------------------------------
        if !payload.is_empty() {
            let seg_seq = hdr.seq;
            if seg_seq == self.rcv_nxt {
                self.rx_ready.extend(payload);
                self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
                // Drain contiguous out-of-order segments.
                while let Some(data) = self.ooo.remove(&self.rcv_nxt) {
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(data.len() as u32);
                    self.rx_ready.extend(&data);
                }
                self.need_ack = true;
            } else if seq_lt(self.rcv_nxt, seg_seq) {
                // Future data: stash (bounded by the advertised window).
                let limit = self.rcv_nxt.wrapping_add(self.cfg.rcv_wnd);
                if seq_lt(seg_seq, limit) {
                    self.ooo.entry(seg_seq).or_insert_with(|| payload.to_vec());
                }
                self.need_ack = true; // duplicate ACK hints at the gap
            } else {
                // Old duplicate: re-ACK.
                self.need_ack = true;
            }
        }

        // --- FIN ----------------------------------------------------------------
        let fin_seq = hdr.seq.wrapping_add(payload.len() as u32);
        if hdr.flags.fin && fin_seq == self.rcv_nxt {
            self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
            self.need_ack = true;
            self.state = match self.state {
                TcpState::Established | TcpState::SynRcvd => TcpState::CloseWait,
                TcpState::FinWait1 => {
                    if self.fin_queued && self.snd_una == self.snd_nxt {
                        TcpState::TimeWait
                    } else {
                        TcpState::Closing
                    }
                }
                TcpState::FinWait2 => TcpState::TimeWait,
                s => s,
            };
        }

        let _ = now;
        self.flush_ack_into(out, start);
    }

    /// Appends a pending pure ACK and records the window advertised by
    /// the last segment this call appended (entries before `start`
    /// belong to earlier calls sharing the scratch vector).
    fn flush_ack_into(&mut self, out: &mut Vec<SegmentOut>, start: usize) {
        if self.need_ack {
            self.need_ack = false;
            out.push(SegmentOut {
                hdr: self.hdr(TcpFlags::ACK, self.snd_nxt),
                payload: Vec::new(),
            });
        }
        if out.len() > start {
            self.last_adv_wnd = out[out.len() - 1].hdr.window;
        }
    }

    /// Whether [`TcpConn::poll`] could emit output or change state right
    /// now: a pending ACK, unacked segments (RTO may fire), queued data
    /// or a deferred FIN in a sending state, or a receive window that
    /// reopened by at least one MSS. When this is `false`, `poll` is a
    /// guaranteed no-op — the readiness pump uses that to skip idle
    /// connections without perturbing the simulated cycle stream.
    pub fn needs_pump(&self) -> bool {
        if self.need_ack || !self.retx.is_empty() {
            return true;
        }
        let sending = matches!(self.state, TcpState::Established | TcpState::CloseWait);
        if sending && (!self.tx.is_empty() || (self.app_closed && !self.fin_queued)) {
            return true;
        }
        self.is_established()
            && u32::from(self.window()) >= u32::from(self.last_adv_wnd) + self.cfg.mss as u32
    }

    /// Pumps output: new segments within the peer's window, the FIN once
    /// the queue drains, retransmissions past the RTO, and any pending
    /// pure ACK. Allocating convenience wrapper around
    /// [`TcpConn::poll_into`].
    pub fn poll(&mut self, now: u64) -> Vec<SegmentOut> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// [`TcpConn::poll`] with a caller-owned output vector: segments are
    /// appended to `out` (existing entries untouched), so the per-tick
    /// hot path reuses one scratch allocation instead of allocating a
    /// fresh `Vec` per connection per poll.
    pub fn poll_into(&mut self, now: u64, out: &mut Vec<SegmentOut>) {
        let start = out.len();

        // Window update: if the application drained the receive buffer
        // enough to reopen a closed-down window by at least one MSS,
        // tell the peer so it resumes sending.
        if self.is_established()
            && u32::from(self.window()) >= u32::from(self.last_adv_wnd) + self.cfg.mss as u32
        {
            self.need_ack = true;
        }

        // New data, window permitting.
        if matches!(self.state, TcpState::Established | TcpState::CloseWait) {
            loop {
                let in_flight = self.snd_nxt.wrapping_sub(self.snd_una);
                let wnd_room = self.snd_wnd.saturating_sub(in_flight) as usize;
                if self.tx.is_empty() || wnd_room == 0 {
                    break;
                }
                let n = self.tx.len().min(self.cfg.mss).min(wnd_room);
                let data = self.tx.take(n);
                let flags = TcpFlags::ACK;
                out.push(SegmentOut {
                    hdr: self.hdr(flags, self.snd_nxt),
                    payload: data.clone(),
                });
                self.retx.push_back(RetxSeg {
                    seq: self.snd_nxt,
                    data,
                    fin: false,
                    sent_at: now,
                    retries: 0,
                });
                self.snd_nxt = self.snd_nxt.wrapping_add(n as u32);
                self.need_ack = false; // data segments carry the ACK
            }
        }

        // FIN when the application closed and everything is out.
        if self.app_closed
            && !self.fin_queued
            && self.tx.is_empty()
            && matches!(self.state, TcpState::Established | TcpState::CloseWait)
        {
            let fin = SegmentOut {
                hdr: self.hdr(TcpFlags::FIN_ACK, self.snd_nxt),
                payload: Vec::new(),
            };
            out.push(fin);
            self.retx.push_back(RetxSeg {
                seq: self.snd_nxt,
                data: Vec::new(),
                fin: true,
                sent_at: now,
                retries: 0,
            });
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.fin_queued = true;
            self.state = match self.state {
                TcpState::Established => TcpState::FinWait1,
                TcpState::CloseWait => TcpState::LastAck,
                s => s,
            };
            self.need_ack = false;
        }

        // Retransmissions.
        if let Some(front) = self.retx.front_mut() {
            if now.saturating_sub(front.sent_at) >= self.cfg.rto_cycles {
                front.sent_at = now;
                front.retries += 1;
                self.retransmits += 1;
                if front.retries > self.cfg.max_retries {
                    self.state = TcpState::Closed;
                    return;
                }
                let flags = if front.fin {
                    TcpFlags::FIN_ACK
                } else if front.data.is_empty() {
                    // An unacked zero-length entry is a SYN (or SYN-ACK).
                    if self.state == TcpState::SynSent {
                        TcpFlags::SYN
                    } else {
                        TcpFlags::SYN_ACK
                    }
                } else {
                    TcpFlags::ACK
                };
                let seq = front.seq;
                let payload = front.data.clone();
                out.push(SegmentOut {
                    hdr: self.hdr(flags, seq),
                    payload,
                });
            }
        }

        self.flush_ack_into(out, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives two endpoints to completion, delivering every produced
    /// segment (optionally through a fault filter). Returns total
    /// delivered segments.
    fn pump(
        a: &mut TcpConn,
        b: &mut TcpConn,
        now: &mut u64,
        mut filter: impl FnMut(u64, &SegmentOut) -> bool,
    ) -> u64 {
        let mut delivered = 0u64;
        let mut n = 0u64;
        for _ in 0..400 {
            let mut quiet = true;
            let from_a = a.poll(*now);
            for s in from_a {
                n += 1;
                if filter(n, &s) {
                    delivered += 1;
                    quiet = false;
                    for r in b.on_segment(&s.hdr, &s.payload, *now) {
                        n += 1;
                        if filter(n, &r) {
                            delivered += 1;
                            a.on_segment(&r.hdr, &r.payload, *now)
                                .into_iter()
                                .for_each(|rr| {
                                    b.on_segment(&rr.hdr, &rr.payload, *now);
                                });
                        }
                    }
                }
            }
            let from_b = b.poll(*now);
            for s in from_b {
                n += 1;
                if filter(n, &s) {
                    delivered += 1;
                    quiet = false;
                    for r in a.on_segment(&s.hdr, &s.payload, *now) {
                        n += 1;
                        if filter(n, &r) {
                            b.on_segment(&r.hdr, &r.payload, *now);
                        }
                    }
                }
            }
            if quiet {
                *now += TcpConfig::default().rto_cycles + 1; // let RTOs fire
            } else {
                *now += 1000;
            }
        }
        delivered
    }

    fn handshake() -> (TcpConn, TcpConn, u64) {
        let (mut client, syn) = TcpConn::connect(40000, 5201, 1000, TcpConfig::default());
        let (mut server, syn_ack) =
            TcpConn::accept(5201, 40000, 9000, &syn.hdr, TcpConfig::default());
        let acks = client.on_segment(&syn_ack.hdr, &[], 0);
        assert_eq!(client.state, TcpState::Established);
        for a in acks {
            server.on_segment(&a.hdr, &[], 0);
        }
        assert_eq!(server.state, TcpState::Established);
        (client, server, 0)
    }

    #[test]
    fn three_way_handshake_establishes_both_sides() {
        let _ = handshake();
    }

    #[test]
    fn data_flows_and_is_acked() {
        let (mut c, mut s, mut now) = handshake();
        let msg = b"hello from the client".to_vec();
        assert_eq!(c.send(&msg), msg.len());
        pump(&mut c, &mut s, &mut now, |_, _| true);
        assert_eq!(s.take_ready(1024), msg);
        // Everything acked: nothing left in flight.
        assert_eq!(c.tx_pending(), 0);
    }

    #[test]
    fn large_transfer_is_segmented_at_mss() {
        let (mut c, mut s, _) = handshake();
        let data = vec![7u8; 5000];
        c.send(&data);
        let segs = c.poll(0);
        let data_segs: Vec<_> = segs.iter().filter(|s| !s.payload.is_empty()).collect();
        assert_eq!(data_segs.len(), 4); // 1460*3 + 620
        assert!(data_segs.iter().all(|s| s.payload.len() <= MSS));
        let total: usize = data_segs.iter().map(|s| s.payload.len()).sum();
        assert_eq!(total, 5000);
        // Deliver them and verify reassembly.
        for seg in segs {
            s.on_segment(&seg.hdr, &seg.payload, 0);
        }
        assert_eq!(s.take_ready(8192), data);
    }

    #[test]
    fn out_of_order_segments_are_reassembled() {
        let (mut c, mut s, _) = handshake();
        c.send(&(0..200u8).cycle().take(4000).collect::<Vec<_>>());
        let segs: Vec<_> = c
            .poll(0)
            .into_iter()
            .filter(|s| !s.payload.is_empty())
            .collect();
        assert!(segs.len() >= 3);
        // Deliver in reverse order.
        for seg in segs.iter().rev() {
            s.on_segment(&seg.hdr, &seg.payload, 0);
        }
        let got = s.take_ready(8192);
        assert_eq!(got, (0..200u8).cycle().take(4000).collect::<Vec<_>>());
    }

    #[test]
    fn lost_segment_is_retransmitted() {
        let (mut c, mut s, mut now) = handshake();
        let data = vec![3u8; 4000];
        c.send(&data);
        // Drop the 2nd *data* segment, once.
        let mut data_segs = 0u32;
        let mut dropped = false;
        pump(&mut c, &mut s, &mut now, |_, seg| {
            if !seg.payload.is_empty() {
                data_segs += 1;
                if data_segs == 2 && !dropped {
                    dropped = true;
                    return false;
                }
            }
            true
        });
        assert!(dropped);
        assert_eq!(s.take_ready(8192), data);
        assert!(c.retransmits >= 1);
    }

    #[test]
    fn receiver_window_throttles_the_sender() {
        let cfg_small = TcpConfig {
            rcv_wnd: 2000,
            ..TcpConfig::default()
        };
        let (mut c, syn) = TcpConn::connect(1, 2, 100, TcpConfig::default());
        let (mut s, syn_ack) = TcpConn::accept(2, 1, 200, &syn.hdr, cfg_small);
        for a in c.on_segment(&syn_ack.hdr, &[], 0) {
            s.on_segment(&a.hdr, &[], 0);
        }
        c.send(&vec![1u8; 10_000]);
        let segs = c.poll(0);
        let sent: usize = segs.iter().map(|s| s.payload.len()).sum();
        assert!(
            sent <= 2000,
            "sender respected the 2000-byte window (sent {sent})"
        );
        // Deliver the first burst, then: receiver consumes, the window
        // reopens via its ACKs, and the transfer completes.
        for seg in segs {
            for r in s.on_segment(&seg.hdr, &seg.payload, 0) {
                c.on_segment(&r.hdr, &r.payload, 0);
            }
        }
        let mut now = 0;
        let mut received = Vec::new();
        for _ in 0..400 {
            for seg in c.poll(now) {
                for r in s.on_segment(&seg.hdr, &seg.payload, now) {
                    c.on_segment(&r.hdr, &r.payload, now);
                }
            }
            received.extend(s.take_ready(512)); // slow consumer
                                                // The receiver's poll emits window-update ACKs.
            for seg in s.poll(now) {
                for r in c.on_segment(&seg.hdr, &seg.payload, now) {
                    s.on_segment(&r.hdr, &r.payload, now);
                }
            }
            now += 1000;
            if received.len() == 10_000 {
                break;
            }
        }
        assert_eq!(received.len(), 10_000);
    }

    #[test]
    fn clean_shutdown_runs_the_fin_state_machine() {
        let (mut c, mut s, mut now) = handshake();
        c.send(b"bye");
        c.close();
        pump(&mut c, &mut s, &mut now, |_, _| true);
        assert_eq!(s.take_ready(16), b"bye");
        assert!(s.at_eof());
        // Server closes its side too.
        s.close();
        pump(&mut c, &mut s, &mut now, |_, _| true);
        assert!(c.is_closed(), "client state: {:?}", c.state);
        assert!(s.is_closed(), "server state: {:?}", s.state);
    }

    #[test]
    fn simultaneous_close_reaches_closing_states() {
        let (mut c, mut s, _) = handshake();
        c.close();
        s.close();
        let c_fin = c.poll(0);
        let s_fin = s.poll(0);
        assert_eq!(c.state, TcpState::FinWait1);
        assert_eq!(s.state, TcpState::FinWait1);
        // Cross-deliver the FINs and the resulting ACKs.
        for seg in c_fin {
            for r in s.on_segment(&seg.hdr, &seg.payload, 0) {
                c.on_segment(&r.hdr, &r.payload, 0);
            }
        }
        for seg in s_fin {
            for r in c.on_segment(&seg.hdr, &seg.payload, 0) {
                s.on_segment(&r.hdr, &r.payload, 0);
            }
        }
        assert!(c.is_closed(), "client: {:?}", c.state);
        assert!(s.is_closed(), "server: {:?}", s.state);
    }

    #[test]
    fn rst_kills_the_connection() {
        let (mut c, _s, _) = handshake();
        let rst = TcpHeader {
            src_port: 5201,
            dst_port: 40000,
            seq: 0,
            ack: 0,
            flags: TcpFlags::RST,
            window: 0,
        };
        c.on_segment(&rst, &[], 0);
        assert_eq!(c.state, TcpState::Closed);
    }

    #[test]
    fn connection_gives_up_after_max_retries() {
        let (mut c, _syn) = TcpConn::connect(1, 2, 50, TcpConfig::default());
        let mut now = 0u64;
        // Nobody answers the SYN.
        for _ in 0..20 {
            now += TcpConfig::default().rto_cycles + 1;
            c.poll(now);
        }
        assert_eq!(c.state, TcpState::Closed);
    }

    #[test]
    fn duplicate_data_is_ignored_but_reacked() {
        let (mut c, mut s, _) = handshake();
        c.send(b"abc");
        let segs: Vec<_> = c.poll(0);
        let data_seg = segs.iter().find(|s| !s.payload.is_empty()).unwrap().clone();
        let acks1 = s.on_segment(&data_seg.hdr, &data_seg.payload, 0);
        assert!(!acks1.is_empty());
        // Replay the same segment: no duplicate data, but an ACK comes back.
        let acks2 = s.on_segment(&data_seg.hdr, &data_seg.payload, 0);
        assert!(!acks2.is_empty());
        assert_eq!(s.take_ready(16), b"abc");
    }

    #[test]
    fn seq_arithmetic_wraps_correctly() {
        assert!(seq_lt(u32::MAX, 0));
        assert!(seq_lt(u32::MAX - 5, 5));
        assert!(!seq_lt(5, u32::MAX - 5));
        assert!(seq_le(7, 7));
    }

    #[test]
    fn quiesced_connection_reports_no_pump_and_poll_appends_nothing() {
        let (mut c, mut s, mut now) = handshake();
        c.send(b"ping");
        pump(&mut c, &mut s, &mut now, |_, _| true);
        assert_eq!(s.take_ready(16), b"ping");
        // Fully acked and drained: poll must be a guaranteed no-op, and
        // a reused scratch vector's existing entries must survive.
        assert!(!c.needs_pump());
        let mut scratch = vec![SegmentOut {
            hdr: TcpHeader {
                src_port: 0,
                dst_port: 0,
                seq: 0,
                ack: 0,
                flags: TcpFlags::ACK,
                window: 0,
            },
            payload: Vec::new(),
        }];
        c.poll_into(now, &mut scratch);
        assert_eq!(scratch.len(), 1);
    }

    #[test]
    fn pending_work_flags_needs_pump() {
        let (mut c, _s, _) = handshake();
        assert!(!c.needs_pump());
        c.send(b"queued");
        assert!(c.needs_pump(), "queued tx data requires a pump");
        c.poll(0);
        assert!(c.needs_pump(), "unacked segment keeps the RTO armed");
    }

    #[test]
    fn send_respects_tx_buffer_bound() {
        let cfg = TcpConfig {
            max_tx_buf: 100,
            ..Default::default()
        };
        let (mut c, syn) = TcpConn::connect(1, 2, 0, cfg);
        let (_s, syn_ack) = TcpConn::accept(2, 1, 0, &syn.hdr, TcpConfig::default());
        c.on_segment(&syn_ack.hdr, &[], 0);
        assert_eq!(c.send(&[0u8; 500]), 100);
        assert_eq!(c.send(&[0u8; 500]), 0);
    }
}
