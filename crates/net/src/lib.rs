//! # flexos-net — the network-stack substrate
//!
//! A from-scratch TCP/IP stack playing the role lwIP plays in the
//! FlexOS prototype's evaluation images:
//!
//! * [`wire`] — real Ethernet/IPv4/TCP/UDP header formats with Internet
//!   checksums;
//! * [`tcp`] — a full TCP endpoint state machine (handshake, reliable
//!   bidirectional transfer, out-of-order reassembly, retransmission,
//!   flow control, FIN/RST teardown);
//! * [`nic`] — simulated NICs and a point-to-point link with
//!   deterministic fault injection: nth-frame drops/reordering plus
//!   seeded probabilistic chaos (loss, corruption, duplication,
//!   reordering) via [`LinkChaos`];
//! * [`ring`] — socket receive rings living in *simulated* memory, so
//!   every payload byte is protection-checked and cycle-charged;
//! * [`stack`] — the socket API (`listen`/`accept`/`connect`/`send`/
//!   `recv`, plus UDP) and the poll loop, with per-packet cost
//!   accounting (including the Xen hypervisor tax used by Figure 3's
//!   Xen curves).
//!
//! The iperf and Redis workloads of the paper's §4 run over this stack
//! in the `flexos-apps` crate, with the stack placed in its own
//! compartment by the FlexOS build system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod nic;
pub mod ring;
pub mod stack;
pub mod tcp;
pub mod wire;

pub use event::{EventQueue, Interest, ReadyEvent, Trigger};
pub use nic::{Link, LinkChaos, LinkFaults, Nic, NicStats};
pub use ring::SimRing;
pub use stack::{NetError, NetResult, NetStack, SocketId, StackStats};
pub use tcp::{TcpConfig, TcpConn, TcpState};
pub use wire::{Mac, WireError, MSS, MTU};
