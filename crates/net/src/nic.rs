//! Simulated NICs and the link connecting them.
//!
//! A [`Nic`] is a pair of frame queues (the virtio-net role in the
//! paper's images); a [`Link`] moves frames between two NICs and can
//! inject deterministic faults (drops, reordering) to exercise TCP's
//! recovery paths.

use crate::wire::Mac;
use std::collections::VecDeque;

/// NIC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames received (into the rx queue).
    pub rx_frames: u64,
    /// Frames sent (out of the tx queue).
    pub tx_frames: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
}

/// A simulated network interface.
#[derive(Debug)]
pub struct Nic {
    /// The NIC's MAC address.
    pub mac: Mac,
    rx: VecDeque<Vec<u8>>,
    tx: VecDeque<Vec<u8>>,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC with the given MAC.
    pub fn new(mac: Mac) -> Self {
        Self {
            mac,
            rx: VecDeque::new(),
            tx: VecDeque::new(),
            stats: NicStats::default(),
        }
    }

    /// Enqueues an outgoing frame.
    pub fn push_tx(&mut self, frame: Vec<u8>) {
        self.stats.tx_frames += 1;
        self.stats.tx_bytes += frame.len() as u64;
        self.tx.push_back(frame);
    }

    /// Dequeues an outgoing frame (link side).
    pub fn pop_tx(&mut self) -> Option<Vec<u8>> {
        self.tx.pop_front()
    }

    /// Enqueues an incoming frame (link side).
    pub fn push_rx(&mut self, frame: Vec<u8>) {
        self.stats.rx_frames += 1;
        self.stats.rx_bytes += frame.len() as u64;
        self.rx.push_back(frame);
    }

    /// Dequeues an incoming frame (stack side).
    pub fn pop_rx(&mut self) -> Option<Vec<u8>> {
        self.rx.pop_front()
    }

    /// Whether frames are waiting in the rx queue.
    pub fn has_rx(&self) -> bool {
        !self.rx.is_empty()
    }

    /// Whether frames are waiting in the tx queue.
    pub fn has_tx(&self) -> bool {
        !self.tx.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }
}

/// Deterministic link-fault injection.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkFaults {
    /// Drop every `n`-th frame (1-based count across the link lifetime).
    pub drop_every: Option<u64>,
    /// Swap every `n`-th frame with its successor.
    pub reorder_every: Option<u64>,
}

/// A point-to-point link between two NICs.
#[derive(Debug, Default)]
pub struct Link {
    /// Fault-injection configuration.
    pub faults: LinkFaults,
    counter: u64,
    /// Frames dropped so far.
    pub dropped: u64,
    /// Frame pairs reordered so far.
    pub reordered: u64,
}

impl Link {
    /// A fault-free link.
    pub fn new() -> Self {
        Self::default()
    }

    /// A link with fault injection.
    pub fn with_faults(faults: LinkFaults) -> Self {
        Self {
            faults,
            ..Self::default()
        }
    }

    /// Moves every queued frame from `from`'s tx to `to`'s rx, applying
    /// faults. Returns frames delivered.
    pub fn transfer(&mut self, from: &mut Nic, to: &mut Nic) -> usize {
        let mut batch: Vec<Vec<u8>> = Vec::new();
        while let Some(f) = from.pop_tx() {
            self.counter += 1;
            if let Some(n) = self.faults.drop_every {
                if self.counter.is_multiple_of(n) {
                    self.dropped += 1;
                    continue;
                }
            }
            batch.push(f);
        }
        if let Some(n) = self.faults.reorder_every {
            let mut i = 0;
            while i + 1 < batch.len() {
                if (i as u64 + 1).is_multiple_of(n) {
                    batch.swap(i, i + 1);
                    self.reordered += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
        let delivered = batch.len();
        for f in batch {
            to.push_rx(f);
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8) -> Vec<u8> {
        vec![tag; 60]
    }

    #[test]
    fn transfer_moves_frames_in_order() {
        let mut a = Nic::new(Mac::of_nic(0));
        let mut b = Nic::new(Mac::of_nic(1));
        a.push_tx(frame(1));
        a.push_tx(frame(2));
        let mut link = Link::new();
        assert_eq!(link.transfer(&mut a, &mut b), 2);
        assert_eq!(b.pop_rx().unwrap()[0], 1);
        assert_eq!(b.pop_rx().unwrap()[0], 2);
        assert_eq!(a.stats().tx_frames, 2);
        assert_eq!(b.stats().rx_frames, 2);
    }

    #[test]
    fn drop_every_discards_deterministically() {
        let mut a = Nic::new(Mac::of_nic(0));
        let mut b = Nic::new(Mac::of_nic(1));
        for i in 0..6 {
            a.push_tx(frame(i));
        }
        let mut link = Link::with_faults(LinkFaults {
            drop_every: Some(3),
            reorder_every: None,
        });
        assert_eq!(link.transfer(&mut a, &mut b), 4);
        assert_eq!(link.dropped, 2);
        let tags: Vec<u8> = std::iter::from_fn(|| b.pop_rx()).map(|f| f[0]).collect();
        assert_eq!(tags, vec![0, 1, 3, 4]); // frames 2 and 5 dropped
    }

    #[test]
    fn reorder_every_swaps_neighbours() {
        let mut a = Nic::new(Mac::of_nic(0));
        let mut b = Nic::new(Mac::of_nic(1));
        for i in 0..4 {
            a.push_tx(frame(i));
        }
        let mut link = Link::with_faults(LinkFaults {
            drop_every: None,
            reorder_every: Some(2),
        });
        link.transfer(&mut a, &mut b);
        let tags: Vec<u8> = std::iter::from_fn(|| b.pop_rx()).map(|f| f[0]).collect();
        // The 2nd frame (1-based) swaps with its successor.
        assert_eq!(tags, vec![0, 2, 1, 3]);
        assert_eq!(link.reordered, 1);
    }
}
