//! Simulated NICs and the link connecting them.
//!
//! A [`Nic`] is a pair of frame queues (the virtio-net role in the
//! paper's images); a [`Link`] moves frames between two NICs and can
//! inject deterministic faults (drops, reordering) to exercise TCP's
//! recovery paths.

use crate::wire::Mac;
use flexos_machine::SplitMix64;
use std::collections::VecDeque;

/// NIC counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames received (into the rx queue).
    pub rx_frames: u64,
    /// Frames sent (out of the tx queue).
    pub tx_frames: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
}

/// A simulated network interface.
#[derive(Debug)]
pub struct Nic {
    /// The NIC's MAC address.
    pub mac: Mac,
    rx: VecDeque<Vec<u8>>,
    tx: VecDeque<Vec<u8>>,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC with the given MAC.
    pub fn new(mac: Mac) -> Self {
        Self {
            mac,
            rx: VecDeque::new(),
            tx: VecDeque::new(),
            stats: NicStats::default(),
        }
    }

    /// Enqueues an outgoing frame.
    pub fn push_tx(&mut self, frame: Vec<u8>) {
        self.stats.tx_frames += 1;
        self.stats.tx_bytes += frame.len() as u64;
        self.tx.push_back(frame);
    }

    /// Dequeues an outgoing frame (link side).
    pub fn pop_tx(&mut self) -> Option<Vec<u8>> {
        self.tx.pop_front()
    }

    /// Enqueues an incoming frame (link side).
    pub fn push_rx(&mut self, frame: Vec<u8>) {
        self.stats.rx_frames += 1;
        self.stats.rx_bytes += frame.len() as u64;
        self.rx.push_back(frame);
    }

    /// Dequeues an incoming frame (stack side).
    pub fn pop_rx(&mut self) -> Option<Vec<u8>> {
        self.rx.pop_front()
    }

    /// Whether frames are waiting in the rx queue.
    pub fn has_rx(&self) -> bool {
        !self.rx.is_empty()
    }

    /// Whether frames are waiting in the tx queue.
    pub fn has_tx(&self) -> bool {
        !self.tx.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }
}

/// Deterministic link-fault injection.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkFaults {
    /// Drop every `n`-th frame (1-based count across the link lifetime).
    pub drop_every: Option<u64>,
    /// Swap every `n`-th frame with its successor.
    pub reorder_every: Option<u64>,
}

/// Seeded probabilistic link chaos (the `flexos-inject` layer's NIC
/// choke point). Rates are per-mille per frame, drawn from a private
/// [`SplitMix64`] stream so the fault schedule is a pure function of the
/// seed and the frame sequence.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkChaos {
    /// Probability (‰) that a frame is silently dropped.
    pub loss_per_mille: u16,
    /// Probability (‰) that one byte of a frame is flipped. Corrupted
    /// frames survive to the receiver, where checksums reject them —
    /// exercising the demux-drop and TCP-retransmit paths.
    pub corrupt_per_mille: u16,
    /// Probability (‰) that a frame is delivered twice.
    pub dup_per_mille: u16,
    /// Probability (‰) that a frame swaps with its successor in the
    /// batch.
    pub reorder_per_mille: u16,
}

/// A point-to-point link between two NICs.
#[derive(Debug, Default)]
pub struct Link {
    /// Fault-injection configuration.
    pub faults: LinkFaults,
    chaos: Option<(LinkChaos, SplitMix64)>,
    counter: u64,
    /// Frames dropped so far.
    pub dropped: u64,
    /// Frame pairs reordered so far.
    pub reordered: u64,
    /// Frames with an injected byte flip so far.
    pub corrupted: u64,
    /// Frames delivered twice so far.
    pub duplicated: u64,
    /// Reusable staging buffer for [`Link::transfer`] (frames are moved
    /// through it; the outer Vec's capacity is what gets recycled).
    batch: Vec<Vec<u8>>,
}

impl Link {
    /// A fault-free link.
    pub fn new() -> Self {
        Self::default()
    }

    /// A link with deterministic nth-frame fault injection.
    pub fn with_faults(faults: LinkFaults) -> Self {
        Self {
            faults,
            ..Self::default()
        }
    }

    /// A link with seeded probabilistic chaos.
    pub fn with_chaos(chaos: LinkChaos, seed: u64) -> Self {
        let mut l = Self::default();
        l.set_chaos(chaos, seed);
        l
    }

    /// Installs (or replaces) the chaos configuration.
    pub fn set_chaos(&mut self, chaos: LinkChaos, seed: u64) {
        self.chaos = Some((chaos, SplitMix64::new(seed)));
    }

    /// Moves every queued frame from `from`'s tx to `to`'s rx, applying
    /// faults. Returns frames delivered (duplicates count individually).
    pub fn transfer(&mut self, from: &mut Nic, to: &mut Nic) -> usize {
        let mut batch = std::mem::take(&mut self.batch);
        batch.clear();
        while let Some(mut f) = from.pop_tx() {
            self.counter += 1;
            if let Some(n) = self.faults.drop_every {
                if self.counter.is_multiple_of(n) {
                    self.dropped += 1;
                    continue;
                }
            }
            if let Some((chaos, rng)) = self.chaos.as_mut() {
                if rng.hit(chaos.loss_per_mille) {
                    self.dropped += 1;
                    continue;
                }
                if rng.hit(chaos.corrupt_per_mille) && !f.is_empty() {
                    let i = rng.below(f.len() as u64) as usize;
                    f[i] ^= 0xff;
                    self.corrupted += 1;
                }
                if rng.hit(chaos.dup_per_mille) {
                    batch.push(f.clone());
                    self.duplicated += 1;
                }
            }
            batch.push(f);
        }
        if let Some(n) = self.faults.reorder_every {
            let mut i = 0;
            while i + 1 < batch.len() {
                if (i as u64 + 1).is_multiple_of(n) {
                    batch.swap(i, i + 1);
                    self.reordered += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
        if let Some((chaos, rng)) = self.chaos.as_mut() {
            if chaos.reorder_per_mille > 0 {
                let mut i = 0;
                while i + 1 < batch.len() {
                    if rng.hit(chaos.reorder_per_mille) {
                        batch.swap(i, i + 1);
                        self.reordered += 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        let delivered = batch.len();
        for f in batch.drain(..) {
            to.push_rx(f);
        }
        self.batch = batch;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8) -> Vec<u8> {
        vec![tag; 60]
    }

    #[test]
    fn transfer_moves_frames_in_order() {
        let mut a = Nic::new(Mac::of_nic(0));
        let mut b = Nic::new(Mac::of_nic(1));
        a.push_tx(frame(1));
        a.push_tx(frame(2));
        let mut link = Link::new();
        assert_eq!(link.transfer(&mut a, &mut b), 2);
        assert_eq!(b.pop_rx().unwrap()[0], 1);
        assert_eq!(b.pop_rx().unwrap()[0], 2);
        assert_eq!(a.stats().tx_frames, 2);
        assert_eq!(b.stats().rx_frames, 2);
    }

    #[test]
    fn drop_every_discards_deterministically() {
        let mut a = Nic::new(Mac::of_nic(0));
        let mut b = Nic::new(Mac::of_nic(1));
        for i in 0..6 {
            a.push_tx(frame(i));
        }
        let mut link = Link::with_faults(LinkFaults {
            drop_every: Some(3),
            reorder_every: None,
        });
        assert_eq!(link.transfer(&mut a, &mut b), 4);
        assert_eq!(link.dropped, 2);
        let tags: Vec<u8> = std::iter::from_fn(|| b.pop_rx()).map(|f| f[0]).collect();
        assert_eq!(tags, vec![0, 1, 3, 4]); // frames 2 and 5 dropped
    }

    #[test]
    fn chaos_is_deterministic_for_a_seed() {
        let chaos = LinkChaos {
            loss_per_mille: 200,
            corrupt_per_mille: 100,
            dup_per_mille: 50,
            reorder_per_mille: 50,
        };
        let run = || {
            let mut a = Nic::new(Mac::of_nic(0));
            let mut b = Nic::new(Mac::of_nic(1));
            for i in 0..100 {
                a.push_tx(frame(i));
            }
            let mut link = Link::with_chaos(chaos, 42);
            link.transfer(&mut a, &mut b);
            let tags: Vec<u8> = std::iter::from_fn(|| b.pop_rx()).map(|f| f[0]).collect();
            (tags, link.dropped, link.corrupted, link.duplicated)
        };
        assert_eq!(run(), run());
        // A different seed produces a different schedule.
        let mut a = Nic::new(Mac::of_nic(0));
        let mut b = Nic::new(Mac::of_nic(1));
        for i in 0..100 {
            a.push_tx(frame(i));
        }
        let mut link = Link::with_chaos(chaos, 43);
        link.transfer(&mut a, &mut b);
        let other: Vec<u8> = std::iter::from_fn(|| b.pop_rx()).map(|f| f[0]).collect();
        assert_ne!(other, run().0);
    }

    #[test]
    fn chaos_loss_rate_is_roughly_honoured() {
        let mut a = Nic::new(Mac::of_nic(0));
        let mut b = Nic::new(Mac::of_nic(1));
        for _ in 0..1000 {
            a.push_tx(frame(0));
        }
        let mut link = Link::with_chaos(
            LinkChaos {
                loss_per_mille: 100,
                ..Default::default()
            },
            7,
        );
        let delivered = link.transfer(&mut a, &mut b);
        assert!((850..=950).contains(&delivered), "{delivered} delivered");
        assert_eq!(delivered as u64, 1000 - link.dropped);
    }

    #[test]
    fn chaos_corruption_flips_exactly_one_byte() {
        let mut a = Nic::new(Mac::of_nic(0));
        let mut b = Nic::new(Mac::of_nic(1));
        for i in 0..50 {
            a.push_tx(frame(i));
        }
        let mut link = Link::with_chaos(
            LinkChaos {
                corrupt_per_mille: 1000, // corrupt every frame
                ..Default::default()
            },
            1,
        );
        link.transfer(&mut a, &mut b);
        assert_eq!(link.corrupted, 50);
        let mut i = 0u8;
        while let Some(f) = b.pop_rx() {
            let flipped = f.iter().filter(|&&x| x != i).count();
            assert_eq!(flipped, 1, "frame {i}");
            i += 1;
        }
    }

    #[test]
    fn reorder_every_swaps_neighbours() {
        let mut a = Nic::new(Mac::of_nic(0));
        let mut b = Nic::new(Mac::of_nic(1));
        for i in 0..4 {
            a.push_tx(frame(i));
        }
        let mut link = Link::with_faults(LinkFaults {
            drop_every: None,
            reorder_every: Some(2),
        });
        link.transfer(&mut a, &mut b);
        let tags: Vec<u8> = std::iter::from_fn(|| b.pop_rx()).map(|f| f[0]).collect();
        // The 2nd frame (1-based) swaps with its successor.
        assert_eq!(tags, vec![0, 2, 1, 3]);
        assert_eq!(link.reordered, 1);
    }
}
