//! The network-stack micro-library: sockets, demux, and the poll loop.
//!
//! [`NetStack`] is the lwIP-role component of the FlexOS images: it owns
//! the NIC, the TCP/UDP port tables and every socket's receive ring (in
//! the stack compartment's simulated memory), and exposes the socket API
//! the paper's listing shows being gated (`rc = listen(sockfd, 5)` →
//! `uk_gate_r(rc, listen, sockfd, 5)`).
//!
//! Cost accounting: every received frame pays NIC + per-packet protocol
//! costs (plus the hypervisor tax on Xen); every emitted segment pays the
//! same on the way out; checksums pay a per-byte streaming cost; payload
//! movement in/out of socket rings runs through the simulated machine and
//! is charged (and protection-checked) there.

use crate::event::{EventQueue, Interest, ReadyEvent, Trigger};
use crate::nic::Nic;
use crate::ring::SimRing;
use crate::tcp::{SegmentOut, TcpConfig, TcpConn};
use crate::wire::{
    build_tcp_frame, build_udp_frame, EthHeader, Ipv4Header, Mac, TcpFlags, TcpHeader, UdpHeader,
    WireError, ETHERTYPE_IPV4, ETH_LEN, IPV4_LEN, PROTO_TCP, PROTO_UDP, UDP_LEN,
};
use flexos_machine::{Addr, Fault, Machine, VcpuId};
use flexos_trace::{NetTrace, SpanKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Socket-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The operation would block; retry after progress.
    WouldBlock,
    /// The connection is closed (EOF or reset).
    Closed,
    /// The port is already bound.
    AddrInUse,
    /// Unknown or wrong-kind socket.
    InvalidSocket,
    /// The stack's buffer pool is exhausted.
    NoBuffers,
    /// The datagram exceeds what the wire format can describe
    /// (cf. `EMSGSIZE`).
    MessageTooLong,
    /// A machine fault surfaced during the operation.
    Fault(Fault),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::WouldBlock => write!(f, "operation would block"),
            NetError::Closed => write!(f, "connection closed"),
            NetError::AddrInUse => write!(f, "address in use"),
            NetError::InvalidSocket => write!(f, "invalid socket"),
            NetError::NoBuffers => write!(f, "no buffers"),
            NetError::MessageTooLong => write!(f, "message too long for the wire format"),
            NetError::Fault(fault) => write!(f, "fault: {fault}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<Fault> for NetError {
    fn from(f: Fault) -> Self {
        NetError::Fault(f)
    }
}

/// Socket-layer result.
pub type NetResult<T> = Result<T, NetError>;

/// A socket handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub usize);

/// Receive-ring capacity per TCP socket (default; tunable via
/// [`NetStack::set_sock_ring_bytes`] for high-connection-count serving).
pub const SOCK_RX_RING: u64 = 64 * 1024;

/// Default accept-backlog bound per listener (cf. `somaxconn`).
pub const DEFAULT_BACKLOG_CAP: usize = 1024;

/// Maximum queued datagrams per UDP socket.
pub const UDP_QUEUE_DEPTH: usize = 64;

/// First port of the ephemeral (dynamic) range, per IANA.
pub const EPHEMERAL_BASE: u16 = 49152;

#[derive(Debug)]
enum Sock {
    TcpListen {
        port: u16,
        backlog: VecDeque<SocketId>,
    },
    TcpStream {
        conn: TcpConn,
        rx: SimRing,
        remote: (u32, u16),
    },
    Udp {
        port: u16,
        rx: VecDeque<(u32, u16, Vec<u8>)>,
    },
}

/// Stack counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStats {
    /// TCP segments received and accepted.
    pub rx_segments: u64,
    /// TCP segments emitted.
    pub tx_segments: u64,
    /// Frames dropped at demux (bad checksum, no listener, …).
    pub demux_drops: u64,
    /// UDP datagrams received.
    pub rx_datagrams: u64,
    /// SYNs shed because a listener's accept backlog was full.
    pub backlog_overflows: u64,
}

/// A bump pool for socket receive rings, carved out of the stack
/// compartment's memory, with a size-bucketed free list so reaped
/// connections return their ring for reuse (connection churn does not
/// exhaust the pool).
#[derive(Debug, Clone)]
struct BufPool {
    base: Addr,
    len: u64,
    next: u64,
    free: BTreeMap<u64, Vec<Addr>>,
}

impl BufPool {
    fn carve(&mut self, bytes: u64) -> Option<Addr> {
        if let Some(list) = self.free.get_mut(&bytes) {
            if let Some(a) = list.pop() {
                return Some(a);
            }
        }
        if self.next + bytes > self.len {
            return None;
        }
        let a = Addr(self.base.0 + self.next);
        self.next += bytes;
        Some(a)
    }

    fn release(&mut self, a: Addr, bytes: u64) {
        self.free.entry(bytes).or_default().push(a);
    }

    /// Bytes neither carved-and-live nor on the free list.
    #[cfg(test)]
    fn outstanding(&self) -> u64 {
        let freed: u64 = self
            .free
            .iter()
            .map(|(sz, list)| sz * list.len() as u64)
            .sum();
        self.next - freed
    }
}

/// The network stack.
#[derive(Debug)]
pub struct NetStack {
    /// Our IPv4 address.
    pub ip: u32,
    mac: Mac,
    /// The owned NIC.
    pub nic: Nic,
    socks: Vec<Option<Sock>>,
    /// Freed socket slots, reused lowest-first (matching the old
    /// first-`None` scan) so slot assignment stays deterministic.
    free_slots: BTreeSet<usize>,
    /// Stream sockets that may produce output or deliverable bytes on
    /// the next pump. Everything outside this set is guaranteed idle
    /// ([`TcpConn::needs_pump`] false, nothing staged for its ring), so
    /// the pump is O(active), never O(open).
    active: BTreeSet<usize>,
    /// Readiness index fed by O(1) hooks at state transitions.
    events: EventQueue,
    /// Accept-backlog bound; SYNs beyond it are shed.
    backlog_cap: usize,
    /// Receive-ring bytes carved per new TCP socket.
    sock_ring_bytes: u64,
    /// Retransmit count carried over from reaped connections, so
    /// [`NetStack::retransmits`] is stable across churn.
    closed_retransmits: u64,
    listeners: BTreeMap<u16, SocketId>,
    conns: BTreeMap<(u16, u32, u16), SocketId>,
    udp_ports: BTreeMap<u16, SocketId>,
    pool: BufPool,
    tcp_cfg: TcpConfig,
    next_ephemeral: u16,
    iss: u32,
    ip_ident: u16,
    /// Extra per-packet cycles (the Xen hypervisor tax; 0 on KVM).
    pub extra_per_packet: u64,
    /// Extra per-packet cycles charged when the stack compartment runs
    /// with software hardening (instrumented packet processing).
    pub sh_per_packet: u64,
    /// Extra cycles per 16 payload bytes under hardening (ASAN-style
    /// per-granule checks on the stack's buffer handling).
    pub sh_per_16_bytes: u64,
    stats: StackStats,
    trace: NetTrace,
    /// Reusable bounce buffer for send paths that must stage payload
    /// bytes from simulated memory before framing (no per-call alloc).
    tx_scratch: Vec<u8>,
    /// Reusable segment scratch for the pump and demux paths (the
    /// PR-4 zero-alloc doctrine applied to `TcpConn::poll_into`).
    seg_scratch: Vec<SegmentOut>,
    /// Reusable active-set snapshot for the pump.
    active_scratch: Vec<usize>,
}

impl NetStack {
    /// Creates a stack owning `nic`, with `pool_base..pool_base+pool_len`
    /// of the stack compartment's memory available for socket rings.
    pub fn new(ip: u32, nic: Nic, pool_base: Addr, pool_len: u64) -> Self {
        Self {
            ip,
            mac: nic.mac,
            nic,
            socks: Vec::new(),
            free_slots: BTreeSet::new(),
            active: BTreeSet::new(),
            events: EventQueue::new(),
            backlog_cap: DEFAULT_BACKLOG_CAP,
            sock_ring_bytes: SOCK_RX_RING,
            closed_retransmits: 0,
            listeners: BTreeMap::new(),
            conns: BTreeMap::new(),
            udp_ports: BTreeMap::new(),
            pool: BufPool {
                base: pool_base,
                len: pool_len,
                next: 0,
                free: BTreeMap::new(),
            },
            tcp_cfg: TcpConfig::default(),
            next_ephemeral: EPHEMERAL_BASE,
            iss: 0x1000,
            ip_ident: 1,
            extra_per_packet: 0,
            sh_per_packet: 0,
            sh_per_16_bytes: 0,
            stats: StackStats::default(),
            trace: NetTrace::new(),
            tx_scratch: Vec::new(),
            seg_scratch: Vec::new(),
            active_scratch: Vec::new(),
        }
    }

    /// Bounds the accept backlog of every listener; SYNs arriving while
    /// a backlog is full are shed (counted in
    /// [`StackStats::backlog_overflows`]) and left to the client's RTO.
    pub fn set_backlog_cap(&mut self, cap: usize) {
        self.backlog_cap = cap.max(1);
    }

    /// Sets the receive-ring bytes carved per new TCP socket. Serving
    /// tiers holding 10⁵ sockets shrink this so the pool holds them all.
    /// Sub-MSS rings are fine: the advertised TCP window is derived from
    /// `TcpConfig::rcv_wnd` minus undrained app bytes, not from the ring
    /// — the ring only stages payload between `poll` and `recv`, so a
    /// small ring bounds per-poll staging, never the window.
    pub fn set_sock_ring_bytes(&mut self, bytes: u64) {
        self.sock_ring_bytes = bytes.max(64);
    }

    /// The readiness index (registrations, counters).
    pub fn events(&self) -> &EventQueue {
        &self.events
    }

    /// Mutable readiness index (interest changes, e.g. opting a stream
    /// into WRITE readiness).
    pub fn events_mut(&mut self) -> &mut EventQueue {
        &mut self.events
    }

    /// Drains ready sockets into `out` — O(ready), never O(open).
    pub fn poll_events(&mut self, out: &mut Vec<ReadyEvent>) {
        self.events.poll(out);
    }

    #[inline]
    fn packet_tax(&self, payload_len: u64) -> u64 {
        self.extra_per_packet + self.sh_per_packet + self.sh_per_16_bytes * payload_len.div_ceil(16)
    }

    /// Overrides the TCP configuration used for new connections.
    pub fn set_tcp_config(&mut self, cfg: TcpConfig) {
        self.tcp_cfg = cfg;
    }

    /// Counters.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// Packet telemetry (counters plus the drop-event ring).
    pub fn trace(&self) -> &NetTrace {
        &self.trace
    }

    /// Total TCP retransmissions across live and reaped connections.
    pub fn retransmits(&self) -> u64 {
        self.closed_retransmits
            + self
                .socks
                .iter()
                .filter_map(|s| match s {
                    Some(Sock::TcpStream { conn, .. }) => Some(conn.retransmits),
                    _ => None,
                })
                .sum::<u64>()
    }

    fn insert(&mut self, s: Sock) -> SocketId {
        // Lowest freed slot first (same assignment the old first-`None`
        // scan produced), but O(log n) instead of O(open).
        if let Some(i) = self.free_slots.pop_first() {
            self.socks[i] = Some(s);
            return SocketId(i);
        }
        self.socks.push(Some(s));
        SocketId(self.socks.len() - 1)
    }

    /// Marks a stream as needing pump attention on the next poll.
    #[inline]
    fn mark_active(&mut self, idx: usize) {
        self.active.insert(idx);
    }

    fn sock(&mut self, id: SocketId) -> NetResult<&mut Sock> {
        self.socks
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or(NetError::InvalidSocket)
    }

    fn next_iss(&mut self) -> u32 {
        self.iss = self.iss.wrapping_add(0x3919);
        self.iss
    }

    /// Picks a free ephemeral port for a connection to `dst_ip:dst_port`.
    ///
    /// Linear probe from the rotor: a port is busy only if its full
    /// `(local, remote-ip, remote-port)` 4-tuple is still bound to a live
    /// connection (like a real stack, the same local port may serve two
    /// different destinations). Once every port in the dynamic range has
    /// been probed the allocation fails with `AddrInUse` — the simulated
    /// `EADDRNOTAVAIL` — instead of silently reusing a live 4-tuple, which
    /// the old `wrapping_add(1).max(49152)` rotor did after a wrap.
    fn alloc_ephemeral(&mut self, dst_ip: u32, dst_port: u16) -> NetResult<u16> {
        const RANGE: u32 = u16::MAX as u32 - EPHEMERAL_BASE as u32 + 1; // 16384 ports
        for _ in 0..RANGE {
            let port = self.next_ephemeral;
            self.next_ephemeral = if port == u16::MAX {
                EPHEMERAL_BASE
            } else {
                port + 1
            };
            if !self.conns.contains_key(&(port, dst_ip, dst_port)) {
                return Ok(port);
            }
        }
        Err(NetError::AddrInUse)
    }

    // --- socket API ------------------------------------------------------------

    /// Opens a TCP listener on `port`.
    pub fn tcp_listen(&mut self, port: u16) -> NetResult<SocketId> {
        if self.listeners.contains_key(&port) {
            return Err(NetError::AddrInUse);
        }
        let id = self.insert(Sock::TcpListen {
            port,
            backlog: VecDeque::new(),
        });
        self.listeners.insert(port, id);
        self.events.register(id, Interest::ACCEPT, Trigger::Level);
        Ok(id)
    }

    /// Accepts a pending connection, if any.
    pub fn tcp_accept(&mut self, listener: SocketId) -> NetResult<Option<SocketId>> {
        let got = match self.sock(listener)? {
            Sock::TcpListen { backlog, .. } => {
                let got = backlog.pop_front();
                let empty = backlog.is_empty();
                (got, empty)
            }
            _ => return Err(NetError::InvalidSocket),
        };
        if got.1 {
            self.events.clear(listener, Interest::ACCEPT);
        }
        Ok(got.0)
    }

    /// Initiates an active connection to `dst_ip:dst_port`; the SYN goes
    /// out on the next flush. Completion is reported by
    /// [`NetStack::tcp_is_established`].
    pub fn tcp_connect(&mut self, dst_ip: u32, dst_port: u16) -> NetResult<SocketId> {
        let local_port = self.alloc_ephemeral(dst_ip, dst_port)?;
        let iss = self.next_iss();
        let (conn, syn) = TcpConn::connect(local_port, dst_port, iss, self.tcp_cfg.clone());
        let ring = self.sock_ring_bytes;
        let rx_base = self.pool.carve(ring).ok_or(NetError::NoBuffers)?;
        let id = self.insert(Sock::TcpStream {
            conn,
            rx: SimRing::new(rx_base, ring),
            remote: (dst_ip, dst_port),
        });
        self.conns.insert((local_port, dst_ip, dst_port), id);
        self.events.register(id, Interest::READ, Trigger::Level);
        self.mark_active(id.0);
        self.emit_tcp(dst_ip, &syn);
        Ok(id)
    }

    /// Whether a stream socket has completed the handshake.
    pub fn tcp_is_established(&mut self, id: SocketId) -> NetResult<bool> {
        match self.sock(id)? {
            Sock::TcpStream { conn, .. } => Ok(conn.is_established()),
            _ => Err(NetError::InvalidSocket),
        }
    }

    /// Whether a stream socket has bytes ready (or an EOF to report) —
    /// the readability condition wait queues block on.
    pub fn tcp_readable(&mut self, id: SocketId) -> NetResult<bool> {
        match self.sock(id)? {
            Sock::TcpStream { conn, rx, .. } => {
                Ok(!rx.is_empty() || conn.at_eof() || conn.is_closed())
            }
            Sock::TcpListen { backlog, .. } => Ok(!backlog.is_empty()),
            _ => Err(NetError::InvalidSocket),
        }
    }

    /// Every open TCP stream socket id (used by the OS layer to scan for
    /// newly-readable sockets after a poll).
    pub fn tcp_stream_ids(&self) -> Vec<SocketId> {
        self.socks
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, Some(Sock::TcpStream { .. })).then_some(SocketId(i)))
            .collect()
    }

    /// Whether a stream socket is fully closed.
    pub fn tcp_is_closed(&mut self, id: SocketId) -> NetResult<bool> {
        match self.sock(id)? {
            Sock::TcpStream { conn, .. } => Ok(conn.is_closed()),
            _ => Err(NetError::InvalidSocket),
        }
    }

    /// Sends `len` bytes from simulated memory at `src`. Returns bytes
    /// accepted; `WouldBlock` if the transmit buffer is full.
    pub fn tcp_send(
        &mut self,
        m: &mut Machine,
        vcpu: VcpuId,
        id: SocketId,
        src: Addr,
        len: u64,
    ) -> NetResult<u64> {
        m.charge(m.costs().socket_call);
        // Stage through the reusable scratch buffer (taken out of `self`
        // so the socket table can be borrowed mutably below).
        let mut buf = std::mem::take(&mut self.tx_scratch);
        buf.clear();
        buf.resize(len as usize, 0);
        let out = match m.read(vcpu, src, &mut buf) {
            Err(f) => Err(f.into()),
            Ok(()) => match self.sock(id) {
                Ok(Sock::TcpStream { conn, .. }) => {
                    if conn.is_closed() {
                        Err(NetError::Closed)
                    } else {
                        let n = conn.send(&buf) as u64;
                        if n == 0 && len > 0 {
                            Err(NetError::WouldBlock)
                        } else {
                            Ok(n)
                        }
                    }
                }
                Ok(_) => Err(NetError::InvalidSocket),
                Err(e) => Err(e),
            },
        };
        self.tx_scratch = buf;
        if out.is_ok() {
            // Queued bytes need segmentation on the next pump.
            self.mark_active(id.0);
        }
        out
    }

    /// Receives up to `len` bytes into simulated memory at `dst`.
    /// `Ok(0)` means EOF; `WouldBlock` means no data yet.
    pub fn tcp_recv(
        &mut self,
        m: &mut Machine,
        vcpu: VcpuId,
        id: SocketId,
        dst: Addr,
        len: u64,
    ) -> NetResult<u64> {
        m.charge(m.costs().socket_call);
        let (n, still_readable) = match self.sock(id)? {
            Sock::TcpStream { conn, rx, .. } => {
                if rx.is_empty() {
                    if conn.at_eof() || conn.is_closed() {
                        return Ok(0);
                    }
                    return Err(NetError::WouldBlock);
                }
                let n = rx.pop_to(m, vcpu, dst, len)?;
                (n, !rx.is_empty() || conn.at_eof() || conn.is_closed())
            }
            _ => return Err(NetError::InvalidSocket),
        };
        if !still_readable {
            // Level-triggered disarm: the ring drained with no EOF
            // pending, so the socket stops reporting READ until the
            // pump refills it.
            self.events.clear(id, Interest::READ);
        }
        // Freed ring room may admit bytes parked in the TCP machine
        // (and the window update that re-opens the peer).
        self.mark_active(id.0);
        Ok(n)
    }

    /// Closes the sending direction of a stream (FIN) or tears down a
    /// listener/UDP socket.
    pub fn close(&mut self, id: SocketId) -> NetResult<()> {
        match self.sock(id)? {
            Sock::TcpStream { conn, .. } => {
                conn.close();
                // The FIN (and eventual reap) happens on the pump.
                self.mark_active(id.0);
                Ok(())
            }
            Sock::TcpListen { port, .. } => {
                let port = *port;
                self.listeners.remove(&port);
                self.socks[id.0] = None;
                self.free_slots.insert(id.0);
                self.events.deregister(id);
                Ok(())
            }
            Sock::Udp { port, .. } => {
                let port = *port;
                self.udp_ports.remove(&port);
                self.socks[id.0] = None;
                self.free_slots.insert(id.0);
                self.events.deregister(id);
                Ok(())
            }
        }
    }

    /// Binds a UDP socket on `port`.
    pub fn udp_bind(&mut self, port: u16) -> NetResult<SocketId> {
        if self.udp_ports.contains_key(&port) {
            return Err(NetError::AddrInUse);
        }
        let id = self.insert(Sock::Udp {
            port,
            rx: VecDeque::new(),
        });
        self.udp_ports.insert(port, id);
        Ok(id)
    }

    /// Sends a UDP datagram from simulated memory.
    #[allow(clippy::too_many_arguments)] // mirrors sendto(2)'s shape
    pub fn udp_send_to(
        &mut self,
        m: &mut Machine,
        vcpu: VcpuId,
        id: SocketId,
        src: Addr,
        len: u64,
        dst_ip: u32,
        dst_port: u16,
    ) -> NetResult<()> {
        m.charge(m.costs().socket_call);
        let src_port = match self.sock(id)? {
            Sock::Udp { port, .. } => *port,
            _ => return Err(NetError::InvalidSocket),
        };
        // Reject before any 16-bit length cast can truncate.
        if len as usize > crate::wire::UDP_MAX_PAYLOAD {
            return Err(NetError::MessageTooLong);
        }
        let mut buf = std::mem::take(&mut self.tx_scratch);
        buf.clear();
        buf.resize(len as usize, 0);
        if let Err(f) = m.read(vcpu, src, &mut buf) {
            self.tx_scratch = buf;
            return Err(f.into());
        }
        // Checked header construction: the pre-guard above already bounds
        // the payload, but no `as u16` is allowed to silently truncate a
        // wire length even if that guard drifts.
        let Ok(udp_len) = u16::try_from(UDP_LEN + buf.len()) else {
            self.tx_scratch = buf;
            return Err(NetError::MessageTooLong);
        };
        let udp = UdpHeader {
            src_port,
            dst_port,
            len: udp_len,
        };
        let ip = match self.ip_header(dst_ip, PROTO_UDP, UDP_LEN + buf.len()) {
            Ok(ip) => ip,
            Err(_) => {
                self.tx_scratch = buf;
                return Err(NetError::MessageTooLong);
            }
        };
        let eth = self.eth_header();
        m.charge(
            m.costs().stack_per_packet
                + m.costs().nic_per_packet
                + self.packet_tax(buf.len() as u64),
        );
        m.charge(m.costs().copy_cost(buf.len() as u64)); // checksum/DMA touch
        let frame = build_udp_frame(&eth, &ip, &udp, &buf);
        self.tx_scratch = buf;
        let frame = frame.map_err(|_| NetError::MessageTooLong)?;
        self.nic.push_tx(frame);
        Ok(())
    }

    /// Receives a UDP datagram into simulated memory; returns
    /// `(bytes, src_ip, src_port)`.
    pub fn udp_recv_from(
        &mut self,
        m: &mut Machine,
        vcpu: VcpuId,
        id: SocketId,
        dst: Addr,
        max: u64,
    ) -> NetResult<(u64, u32, u16)> {
        m.charge(m.costs().socket_call);
        match self.sock(id)? {
            Sock::Udp { rx, .. } => {
                let (sip, sport, data) = rx.pop_front().ok_or(NetError::WouldBlock)?;
                let n = (data.len() as u64).min(max);
                m.write(vcpu, dst, &data[..n as usize])?;
                Ok((n, sip, sport))
            }
            _ => Err(NetError::InvalidSocket),
        }
    }

    // --- frame emission ----------------------------------------------------------

    fn eth_header(&self) -> EthHeader {
        EthHeader {
            dst: Mac::BROADCAST,
            src: self.mac,
            ethertype: ETHERTYPE_IPV4,
        }
    }

    fn ip_header(&mut self, dst: u32, proto: u8, l4_len: usize) -> Result<Ipv4Header, WireError> {
        // An IPv4 total length must fit in 16 bits; reject (rather than
        // truncate via `as u16`) anything larger, and only consume an
        // ident once the header is actually emittable.
        let total_len =
            u16::try_from(IPV4_LEN + l4_len).map_err(|_| WireError::PayloadTooLarge {
                len: l4_len,
                max: u16::MAX as usize - IPV4_LEN,
            })?;
        self.ip_ident = self.ip_ident.wrapping_add(1);
        Ok(Ipv4Header {
            src: self.ip,
            dst,
            proto,
            total_len,
            ttl: 64,
            ident: self.ip_ident,
        })
    }

    fn emit_tcp(&mut self, dst_ip: u32, seg: &SegmentOut) {
        // TCP payloads are MSS-bounded by the state machine, so neither
        // the header construction nor the builder can fail here; if they
        // ever did, dropping the segment (and letting the RTO resend it)
        // beats emitting a lying header.
        let Ok(ip) = self.ip_header(dst_ip, PROTO_TCP, crate::wire::TCP_LEN + seg.payload.len())
        else {
            debug_assert!(false, "TCP segment exceeded wire limits");
            return;
        };
        let eth = self.eth_header();
        match build_tcp_frame(&eth, &ip, &seg.hdr, &seg.payload) {
            Ok(frame) => {
                self.nic.push_tx(frame);
                self.stats.tx_segments += 1;
                self.trace.on_tx_segment();
            }
            Err(_) => debug_assert!(false, "TCP segment exceeded wire limits"),
        }
    }

    // --- the poll loop --------------------------------------------------------------

    /// One stack iteration: drain the NIC rx queue through demux and the
    /// TCP machines, pump every connection for output, and move ready
    /// bytes into socket receive rings. Costs are charged per packet and
    /// per byte on `m`'s clock.
    pub fn poll(&mut self, m: &mut Machine, vcpu: VcpuId) -> NetResult<()> {
        // Receive path. The span probe brackets the whole drain: one
        // `net-rx` interval per poll that actually processed frames,
        // sharded by the stack's plan-determined vCPU.
        let rx_t0 = m.clock().cycles();
        let mut rx_frames = false;
        while let Some(frame) = self.nic.pop_rx() {
            rx_frames = true;
            m.charge(
                m.costs().nic_per_packet
                    + m.costs().stack_per_packet
                    + self.packet_tax(frame.len() as u64),
            );
            self.handle_frame(m, &frame);
        }
        if rx_frames {
            let t1 = m.clock().cycles();
            m.span_trace_mut().record(
                vcpu.0 as u16,
                SpanKind::Net,
                "net-rx",
                vcpu.0 as u16,
                vcpu.0 as u16,
                rx_t0,
                t1,
            );
        }
        // Transmit + delivery path: pump only the active set, in
        // ascending slot order (the order the old full scan visited
        // sockets). A socket outside the set is guaranteed idle —
        // `TcpConn::needs_pump` false and nothing staged for its ring —
        // so the old scan would have charged nothing for it, and
        // skipping it keeps the cycle stream byte-identical while the
        // pump drops from O(open) to O(active).
        let now = m.clock().cycles();
        let mut act = std::mem::take(&mut self.active_scratch);
        act.clear();
        act.extend(self.active.iter().copied());
        for k in 0..act.len() {
            let i = act[k];
            let mut segs = std::mem::take(&mut self.seg_scratch);
            segs.clear();
            let dst_ip = {
                let Some(Sock::TcpStream { conn, rx, remote }) = self.socks[i].as_mut() else {
                    self.active.remove(&i);
                    self.seg_scratch = segs;
                    continue;
                };
                // Pump protocol output into the reusable scratch.
                conn.poll_into(now, &mut segs);
                // Move in-order payload into the socket's receive ring.
                let room = rx.free();
                if room > 0 && conn.ready_len() > 0 {
                    let data = conn.take_ready(room as usize);
                    if let Err(f) = rx.push(m, vcpu, &data) {
                        self.seg_scratch = segs;
                        self.active_scratch = act;
                        return Err(f.into());
                    }
                }
                remote.0
            };
            for seg in &segs {
                let t0 = m.clock().cycles();
                m.charge(
                    m.costs().stack_per_packet
                        + m.costs().nic_per_packet
                        + self.packet_tax(seg.payload.len() as u64)
                        + m.costs().copy_cost(seg.payload.len() as u64),
                );
                self.emit_tcp(dst_ip, seg);
                let t1 = m.clock().cycles();
                m.span_trace_mut().record(
                    vcpu.0 as u16,
                    SpanKind::Net,
                    "net-tx",
                    vcpu.0 as u16,
                    vcpu.0 as u16,
                    t0,
                    t1,
                );
            }
            segs.clear();
            self.seg_scratch = segs;
            // Readiness sync at the exact transition, then retain or
            // retire the socket from the active set.
            let mut reap = None;
            if let Some(Sock::TcpStream { conn, rx, remote }) = self.socks[i].as_mut() {
                let readable = !rx.is_empty() || conn.at_eof() || conn.is_closed();
                let writable = conn.is_established() && !conn.app_closed() && conn.tx_room() > 0;
                if readable {
                    self.events.post(SocketId(i), Interest::READ);
                } else {
                    self.events.clear(SocketId(i), Interest::READ);
                }
                if writable {
                    self.events.post(SocketId(i), Interest::WRITE);
                } else {
                    self.events.clear(SocketId(i), Interest::WRITE);
                }
                if conn.app_closed() && conn.is_closed() && rx.is_empty() && conn.ready_len() == 0 {
                    // App closed, handshake torn down, ring drained:
                    // nothing can ever touch this socket again.
                    reap = Some((conn.local_port, *remote));
                } else if !conn.needs_pump() && conn.ready_len() == 0 {
                    self.active.remove(&i);
                }
            }
            if let Some((local_port, (rip, rport))) = reap {
                self.reap_stream(i, local_port, rip, rport);
            }
        }
        self.active_scratch = act;
        Ok(())
    }

    /// Tears down a fully-quiesced stream: table entries out, ring back
    /// to the pool, slot onto the free list, readiness registration
    /// dropped (queued stale events die by generation), retransmit count
    /// folded into the stable total.
    fn reap_stream(&mut self, i: usize, local_port: u16, rip: u32, rport: u16) {
        let Some(Sock::TcpStream { conn, rx, .. }) = self.socks[i].take() else {
            return;
        };
        self.conns.remove(&(local_port, rip, rport));
        let (base, cap) = rx.region();
        self.pool.release(base, cap);
        self.closed_retransmits += conn.retransmits;
        self.events.deregister(SocketId(i));
        self.active.remove(&i);
        self.free_slots.insert(i);
    }

    fn handle_frame(&mut self, m: &mut Machine, frame: &[u8]) {
        let now = m.clock().cycles();
        let Some(eth) = EthHeader::parse(frame) else {
            self.stats.demux_drops += 1;
            self.trace.on_drop(now);
            return;
        };
        if eth.ethertype != ETHERTYPE_IPV4 || (eth.dst != self.mac && eth.dst != Mac::BROADCAST) {
            self.stats.demux_drops += 1;
            self.trace.on_drop(now);
            return;
        }
        let Some(ip) = Ipv4Header::parse(&frame[ETH_LEN..]) else {
            self.stats.demux_drops += 1;
            self.trace.on_drop(now);
            return;
        };
        if ip.dst != self.ip {
            self.stats.demux_drops += 1;
            self.trace.on_drop(now);
            return;
        }
        let l4 = &frame[ETH_LEN + IPV4_LEN..ETH_LEN + ip.total_len as usize];
        // Checksum verification touches every byte.
        m.charge(m.costs().copy_cost(l4.len() as u64));
        match ip.proto {
            PROTO_TCP => self.handle_tcp(m, &ip, l4),
            PROTO_UDP => self.handle_udp(now, &ip, l4),
            _ => {
                self.stats.demux_drops += 1;
                self.trace.on_drop(now);
                self.trace.on_drop(now);
            }
        }
    }

    fn handle_tcp(&mut self, m: &mut Machine, ip: &Ipv4Header, l4: &[u8]) {
        let now = m.clock().cycles();
        let Some((hdr, off)) = TcpHeader::parse(ip, l4) else {
            self.stats.demux_drops += 1;
            self.trace.on_drop(now);
            return;
        };
        let payload = &l4[off..];
        let key = (hdr.dst_port, ip.src, hdr.src_port);
        if let Some(&sid) = self.conns.get(&key) {
            let mut segs = std::mem::take(&mut self.seg_scratch);
            segs.clear();
            {
                let Some(Sock::TcpStream { conn, .. }) = self.socks[sid.0].as_mut() else {
                    self.seg_scratch = segs;
                    return;
                };
                self.stats.rx_segments += 1;
                self.trace.on_rx_segment();
                conn.on_segment_into(&hdr, payload, now, &mut segs);
            }
            let dst_ip = ip.src;
            for seg in &segs {
                m.charge(
                    m.costs().stack_per_packet + m.costs().nic_per_packet + self.packet_tax(0),
                );
                self.emit_tcp(dst_ip, seg);
            }
            segs.clear();
            self.seg_scratch = segs;
            // Whatever the segment did (ack, data, FIN), the pump must
            // look at this socket once before it can go idle again.
            self.mark_active(sid.0);
            return;
        }
        if hdr.flags.syn && !hdr.flags.ack {
            if let Some(&lid) = self.listeners.get(&hdr.dst_port) {
                // Bounded accept backlog: shed the SYN before carving a
                // ring — no RST, the client's RTO retries, matching the
                // SYN-drop a real stack does under somaxconn pressure.
                let full = matches!(
                    self.socks[lid.0].as_ref(),
                    Some(Sock::TcpListen { backlog, .. }) if backlog.len() >= self.backlog_cap
                );
                if full {
                    self.stats.backlog_overflows += 1;
                    self.trace.on_backlog_overflow(now);
                    return;
                }
                // Passive open.
                let iss = self.next_iss();
                let cfg = self.tcp_cfg.clone();
                let ring = self.sock_ring_bytes;
                let Some(rx_base) = self.pool.carve(ring) else {
                    self.stats.demux_drops += 1;
                    self.trace.on_drop(now);
                    return;
                };
                let (conn, syn_ack) = TcpConn::accept(hdr.dst_port, hdr.src_port, iss, &hdr, cfg);
                let sid = self.insert(Sock::TcpStream {
                    conn,
                    rx: SimRing::new(rx_base, ring),
                    remote: (ip.src, hdr.src_port),
                });
                self.conns.insert(key, sid);
                if let Some(Sock::TcpListen { backlog, .. }) = self.socks[lid.0].as_mut() {
                    backlog.push_back(sid);
                }
                self.events.register(sid, Interest::READ, Trigger::Level);
                self.events.post(lid, Interest::ACCEPT);
                self.mark_active(sid.0);
                self.stats.rx_segments += 1;
                self.trace.on_rx_segment();
                m.charge(
                    m.costs().stack_per_packet + m.costs().nic_per_packet + self.packet_tax(0),
                );
                let dst_ip = ip.src;
                self.emit_tcp(dst_ip, &syn_ack);
                return;
            }
        }
        // No socket: answer anything but RST with RST.
        if !hdr.flags.rst {
            let rst = SegmentOut {
                hdr: TcpHeader {
                    src_port: hdr.dst_port,
                    dst_port: hdr.src_port,
                    seq: hdr.ack,
                    ack: 0,
                    flags: TcpFlags::RST,
                    window: 0,
                },
                payload: Vec::new(),
            };
            let dst_ip = ip.src;
            self.emit_tcp(dst_ip, &rst);
        }
        self.stats.demux_drops += 1;
        self.trace.on_drop(now);
    }

    fn handle_udp(&mut self, now: u64, ip: &Ipv4Header, l4: &[u8]) {
        let Some(hdr) = UdpHeader::parse(l4) else {
            self.stats.demux_drops += 1;
            self.trace.on_drop(now);
            return;
        };
        let payload = l4[UDP_LEN..hdr.len as usize].to_vec();
        if let Some(&sid) = self.udp_ports.get(&hdr.dst_port) {
            if let Some(Sock::Udp { rx, .. }) = self.socks[sid.0].as_mut() {
                if rx.len() < UDP_QUEUE_DEPTH {
                    rx.push_back((ip.src, hdr.src_port, payload));
                    self.stats.rx_datagrams += 1;
                    self.trace.on_rx_datagram();
                    return;
                }
            }
        }
        self.stats.demux_drops += 1;
        self.trace.on_drop(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::Link;
    use flexos_machine::{PageFlags, ProtKey, VmId};

    const SERVER_IP: u32 = 0x0a00_0001;
    const CLIENT_IP: u32 = 0x0a00_0002;

    struct World {
        m: Machine,
        server: NetStack,
        client: NetStack,
        link: Link,
        app_buf: Addr,
    }

    fn world() -> World {
        let mut m = Machine::with_defaults();
        let pool_s = m
            .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
            .unwrap();
        let pool_c = m
            .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
            .unwrap();
        let app_buf = m
            .alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW)
            .unwrap();
        let server = NetStack::new(SERVER_IP, Nic::new(Mac::of_nic(1)), pool_s, 1 << 20);
        let client = NetStack::new(CLIENT_IP, Nic::new(Mac::of_nic(2)), pool_c, 1 << 20);
        World {
            m,
            server,
            client,
            link: Link::new(),
            app_buf,
        }
    }

    impl World {
        /// One full exchange round: both stacks poll, frames cross the
        /// link both ways.
        fn step(&mut self) {
            self.client.poll(&mut self.m, VcpuId(0)).unwrap();
            self.server.poll(&mut self.m, VcpuId(0)).unwrap();
            self.link
                .transfer(&mut self.client.nic, &mut self.server.nic);
            self.link
                .transfer(&mut self.server.nic, &mut self.client.nic);
            self.client.poll(&mut self.m, VcpuId(0)).unwrap();
            self.server.poll(&mut self.m, VcpuId(0)).unwrap();
        }

        fn establish(&mut self, port: u16) -> (SocketId, SocketId) {
            let l = self.server.tcp_listen(port).unwrap();
            let cs = self.client.tcp_connect(SERVER_IP, port).unwrap();
            for _ in 0..4 {
                self.step();
            }
            let ss = self
                .server
                .tcp_accept(l)
                .unwrap()
                .expect("connection accepted");
            assert!(self.client.tcp_is_established(cs).unwrap());
            (cs, ss)
        }
    }

    #[test]
    fn tcp_connect_accept_end_to_end() {
        let mut w = world();
        let _ = w.establish(5201);
    }

    #[test]
    fn tcp_data_transfer_through_simulated_memory() {
        let mut w = world();
        let (cs, ss) = w.establish(5201);
        // Client writes a message from simulated memory.
        let msg = b"iperf payload: flexible isolation";
        w.m.write(VcpuId(0), w.app_buf, msg).unwrap();
        let sent = w
            .client
            .tcp_send(&mut w.m, VcpuId(0), cs, w.app_buf, msg.len() as u64)
            .unwrap();
        assert_eq!(sent, msg.len() as u64);
        for _ in 0..4 {
            w.step();
        }
        // Server receives into a different simulated buffer.
        let dst = Addr(w.app_buf.0 + 4096);
        let n = w
            .server
            .tcp_recv(&mut w.m, VcpuId(0), ss, dst, 1024)
            .unwrap();
        assert_eq!(n, msg.len() as u64);
        let mut got = vec![0u8; msg.len()];
        w.m.read(VcpuId(0), dst, &mut got).unwrap();
        assert_eq!(&got, msg);
    }

    #[test]
    fn recv_before_data_would_block_and_after_fin_reports_eof() {
        let mut w = world();
        let (cs, ss) = w.establish(5201);
        let dst = Addr(w.app_buf.0 + 4096);
        assert_eq!(
            w.server
                .tcp_recv(&mut w.m, VcpuId(0), ss, dst, 64)
                .unwrap_err(),
            NetError::WouldBlock
        );
        w.client.close(cs).unwrap();
        for _ in 0..4 {
            w.step();
        }
        assert_eq!(
            w.server.tcp_recv(&mut w.m, VcpuId(0), ss, dst, 64).unwrap(),
            0
        );
    }

    #[test]
    fn bulk_transfer_survives_packet_loss() {
        let mut w = world();
        w.link.faults.drop_every = Some(13);
        let (cs, ss) = w.establish(5201);
        let total: usize = 200 * 1024;
        let chunk = vec![0xabu8; 8192];
        w.m.write(VcpuId(0), w.app_buf, &chunk).unwrap();
        let dst = Addr(w.app_buf.0 + 16384);
        let mut sent = 0usize;
        let mut received = 0usize;
        for _round in 0..6000 {
            if sent < total {
                match w
                    .client
                    .tcp_send(&mut w.m, VcpuId(0), cs, w.app_buf, chunk.len() as u64)
                {
                    Ok(n) => sent += n as usize,
                    Err(NetError::WouldBlock) => {}
                    Err(e) => panic!("send failed: {e}"),
                }
            }
            w.step();
            match w.server.tcp_recv(&mut w.m, VcpuId(0), ss, dst, 16384) {
                Ok(n) => received += n as usize,
                Err(NetError::WouldBlock) => {
                    // Let retransmission timers fire.
                    w.m.charge(TcpConfig::default().rto_cycles / 4);
                }
                Err(e) => panic!("recv failed: {e}"),
            }
            if received >= total {
                break;
            }
        }
        assert!(received >= total, "only {received}/{total} bytes made it");
    }

    #[test]
    fn chaos_loss_degrades_but_never_corrupts_the_stream() {
        // 10% seeded probabilistic loss: the transfer completes via the
        // RTO path and the receiver sees exactly the sender's bytes.
        let mut w = world();
        w.link.set_chaos(
            crate::nic::LinkChaos {
                loss_per_mille: 100,
                ..Default::default()
            },
            42,
        );
        let (cs, ss) = w.establish(5201);
        let total: usize = 64 * 1024;
        let pattern = |off: usize| -> u8 { (off % 251) as u8 };
        let dst = Addr(w.app_buf.0 + 16384);
        let mut sent = 0usize;
        let mut received = 0usize;
        for _round in 0..20_000 {
            if sent < total {
                let n = (total - sent).min(4096);
                let chunk: Vec<u8> = (0..n).map(|i| pattern(sent + i)).collect();
                w.m.write(VcpuId(0), w.app_buf, &chunk).unwrap();
                match w
                    .client
                    .tcp_send(&mut w.m, VcpuId(0), cs, w.app_buf, n as u64)
                {
                    Ok(n) => sent += n as usize,
                    Err(NetError::WouldBlock) => {}
                    Err(e) => panic!("send failed: {e}"),
                }
            }
            w.step();
            match w.server.tcp_recv(&mut w.m, VcpuId(0), ss, dst, 16384) {
                Ok(n) => {
                    let mut got = vec![0u8; n as usize];
                    w.m.read(VcpuId(0), dst, &mut got).unwrap();
                    for (i, b) in got.iter().enumerate() {
                        assert_eq!(*b, pattern(received + i), "byte {} corrupted", received + i);
                    }
                    received += n as usize;
                }
                Err(NetError::WouldBlock) => {
                    w.m.charge(TcpConfig::default().rto_cycles / 4);
                }
                Err(e) => panic!("recv failed: {e}"),
            }
            if received >= total {
                break;
            }
        }
        assert_eq!(received, total, "only {received}/{total} bytes made it");
        assert!(w.link.dropped > 0, "chaos never fired");
    }

    #[test]
    fn demux_rejects_foreign_and_corrupt_frames() {
        let mut w = world();
        // Frame for another IP.
        let eth = EthHeader {
            dst: Mac::of_nic(1),
            src: Mac::of_nic(9),
            ethertype: ETHERTYPE_IPV4,
        };
        let mut ip = Ipv4Header {
            src: CLIENT_IP,
            dst: 0x0909_0909,
            proto: PROTO_TCP,
            total_len: (IPV4_LEN + crate::wire::TCP_LEN) as u16,
            ttl: 64,
            ident: 1,
        };
        let tcp = TcpHeader {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 100,
        };
        w.server
            .nic
            .push_rx(build_tcp_frame(&eth, &ip, &tcp, &[]).unwrap());
        // Corrupt frame.
        ip.dst = SERVER_IP;
        let mut frame = build_tcp_frame(&eth, &ip, &tcp, &[]).unwrap();
        frame[ETH_LEN + 10] ^= 0xff; // break the IP checksum
        w.server.nic.push_rx(frame);
        w.server.poll(&mut w.m, VcpuId(0)).unwrap();
        assert_eq!(w.server.stats().demux_drops, 2);
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let mut w = world();
        let cs = w.client.tcp_connect(SERVER_IP, 81).unwrap(); // nobody listens
        for _ in 0..4 {
            w.step();
        }
        assert!(w.client.tcp_is_closed(cs).unwrap());
    }

    #[test]
    fn udp_round_trip() {
        let mut w = world();
        let s_sock = w.server.udp_bind(53).unwrap();
        let c_sock = w.client.udp_bind(1234).unwrap();
        w.m.write(VcpuId(0), w.app_buf, b"ping").unwrap();
        w.client
            .udp_send_to(&mut w.m, VcpuId(0), c_sock, w.app_buf, 4, SERVER_IP, 53)
            .unwrap();
        w.step();
        let dst = Addr(w.app_buf.0 + 512);
        let (n, sip, sport) = w
            .server
            .udp_recv_from(&mut w.m, VcpuId(0), s_sock, dst, 64)
            .unwrap();
        assert_eq!((n, sip, sport), (4, CLIENT_IP, 1234));
        let mut got = [0u8; 4];
        w.m.read(VcpuId(0), dst, &mut got).unwrap();
        assert_eq!(&got, b"ping");
    }

    #[test]
    fn duplicate_bind_is_rejected() {
        let mut w = world();
        w.server.tcp_listen(80).unwrap();
        assert_eq!(w.server.tcp_listen(80).unwrap_err(), NetError::AddrInUse);
        w.server.udp_bind(53).unwrap();
        assert_eq!(w.server.udp_bind(53).unwrap_err(), NetError::AddrInUse);
    }

    #[test]
    fn udp_payload_boundary_at_64k() {
        // 65507 bytes is the largest UDP payload an IPv4 header can
        // describe (total_len == 65535 exactly); one more byte must be
        // rejected, never truncated into a lying header.
        let mut w = world();
        let c_sock = w.client.udp_bind(1234).unwrap();
        let max = crate::wire::UDP_MAX_PAYLOAD as u64; // 65507
        w.client
            .udp_send_to(&mut w.m, VcpuId(0), c_sock, w.app_buf, max, SERVER_IP, 53)
            .unwrap();
        let frame = w.client.nic.pop_tx().expect("max-size datagram emitted");
        let ip = Ipv4Header::parse(&frame[ETH_LEN..]).unwrap();
        assert_eq!(ip.total_len, u16::MAX);

        let idents_before = w.client.ip_ident;
        assert_eq!(
            w.client
                .udp_send_to(
                    &mut w.m,
                    VcpuId(0),
                    c_sock,
                    w.app_buf,
                    max + 1,
                    SERVER_IP,
                    53,
                )
                .unwrap_err(),
            NetError::MessageTooLong
        );
        assert!(w.client.nic.pop_tx().is_none(), "rejected datagram leaked");
        // A rejected datagram consumes no IP ident.
        assert_eq!(w.client.ip_ident, idents_before);
    }

    #[test]
    fn ip_header_rejects_oversize_instead_of_truncating() {
        let mut w = world();
        // 65515 bytes of L4 is the largest that fits (20-byte IP header).
        let ip = w
            .server
            .ip_header(CLIENT_IP, PROTO_UDP, u16::MAX as usize - IPV4_LEN)
            .unwrap();
        assert_eq!(ip.total_len, u16::MAX);
        let err = w
            .server
            .ip_header(CLIENT_IP, PROTO_UDP, u16::MAX as usize - IPV4_LEN + 1)
            .unwrap_err();
        assert!(matches!(err, WireError::PayloadTooLarge { .. }));
    }

    #[test]
    fn ephemeral_ports_never_collide_across_16k_connects() {
        let mut w = world();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..16384u32 {
            let p = w.client.alloc_ephemeral(SERVER_IP, 80).unwrap();
            assert!(p >= EPHEMERAL_BASE);
            assert!(seen.insert(p), "port {p} reused at connect {i}");
            // Pin the 4-tuple as live, as tcp_connect would.
            w.client.conns.insert((p, SERVER_IP, 80), SocketId(0));
        }
        // Every port in the dynamic range is now live: the next connect
        // to the same destination fails cleanly instead of reusing one.
        assert_eq!(
            w.client.alloc_ephemeral(SERVER_IP, 80).unwrap_err(),
            NetError::AddrInUse
        );
        // The 4-tuple, not the port, is the scarce resource: a different
        // destination still gets a port.
        assert!(w.client.alloc_ephemeral(SERVER_IP, 81).is_ok());
    }

    #[test]
    fn tcp_connect_skips_live_ports_after_wrap() {
        let mut w = world();
        w.client.next_ephemeral = u16::MAX;
        let a = w.client.tcp_connect(SERVER_IP, 80).unwrap();
        let port_of = |w: &World, sid: SocketId| {
            w.client
                .conns
                .iter()
                .find_map(|(k, &v)| (v == sid).then_some(k.0))
                .unwrap()
        };
        assert_eq!(port_of(&w, a), u16::MAX);
        // The wrapped rotor lands on a port still bound to a live
        // connection; the allocator must skip it.
        w.client.conns.insert((EPHEMERAL_BASE, SERVER_IP, 80), a);
        let b = w.client.tcp_connect(SERVER_IP, 80).unwrap();
        assert_eq!(port_of(&w, b), EPHEMERAL_BASE + 1);
    }

    #[test]
    fn idle_established_connections_charge_nothing_per_poll() {
        // The O(ready) contract: once a connection quiesces it leaves
        // the active set, and a poll with no frames and no active
        // sockets advances the clock by exactly zero cycles — service
        // cost tracks *active* connections, never *open* ones.
        let mut w = world();
        let _ = w.establish(5201);
        for _ in 0..4 {
            w.step();
        }
        let before = w.m.clock().cycles();
        for _ in 0..100 {
            w.server.poll(&mut w.m, VcpuId(0)).unwrap();
        }
        assert_eq!(w.m.clock().cycles(), before, "idle connections were pumped");
        assert!(w.server.active.is_empty());
    }

    #[test]
    fn readiness_events_fire_on_data_and_clear_on_drain() {
        let mut w = world();
        let (cs, ss) = w.establish(5201);
        let mut ev = Vec::new();
        w.server.poll_events(&mut ev);
        assert!(ev.is_empty(), "no data yet, but events: {ev:?}");
        w.m.write(VcpuId(0), w.app_buf, b"ping").unwrap();
        w.client
            .tcp_send(&mut w.m, VcpuId(0), cs, w.app_buf, 4)
            .unwrap();
        for _ in 0..2 {
            w.step();
        }
        w.server.poll_events(&mut ev);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].sid, ss);
        assert!(ev[0].ready.contains(Interest::READ));
        // Level-triggered: still reported until drained.
        w.server.poll_events(&mut ev);
        assert_eq!(ev.len(), 1);
        let dst = Addr(w.app_buf.0 + 4096);
        w.server.tcp_recv(&mut w.m, VcpuId(0), ss, dst, 64).unwrap();
        w.server.poll_events(&mut ev);
        assert!(ev.is_empty(), "drained socket still reported: {ev:?}");
    }

    #[test]
    fn full_backlog_sheds_syns_with_a_counter() {
        let mut w = world();
        w.server.set_backlog_cap(2);
        let l = w.server.tcp_listen(80).unwrap();
        for _ in 0..4 {
            w.client.tcp_connect(SERVER_IP, 80).unwrap();
        }
        w.step();
        assert_eq!(w.server.stats().backlog_overflows, 2);
        assert_eq!(w.server.trace().backlog_overflows(), 2);
        // Exactly the capped number of connections got through.
        assert!(w.server.tcp_accept(l).unwrap().is_some());
        assert!(w.server.tcp_accept(l).unwrap().is_some());
        assert!(w.server.tcp_accept(l).unwrap().is_none());
    }

    #[test]
    fn connection_churn_leaks_nothing() {
        // Open and close 10⁴ connections: every table, the readiness
        // index, the buffer pool, and the ephemeral-port allocator must
        // come back to their initial sizes (guards the port-allocator
        // fix and the readiness index against stale-entry leaks).
        let mut w = world();
        let l = w.server.tcp_listen(5201).unwrap();
        let pool_before = w.server.pool.outstanding();
        for round in 0..10_000u32 {
            let cs = w.client.tcp_connect(SERVER_IP, 5201).unwrap();
            for _ in 0..4 {
                w.step();
            }
            let ss = w
                .server
                .tcp_accept(l)
                .unwrap()
                .unwrap_or_else(|| panic!("round {round}: not accepted"));
            w.client.close(cs).unwrap();
            w.server.close(ss).unwrap();
            let mut spins = 0;
            while !(w.client.conns.is_empty() && w.server.conns.is_empty()) {
                w.step();
                spins += 1;
                assert!(spins < 64, "round {round}: teardown never quiesced");
            }
        }
        assert!(w.client.conns.is_empty());
        assert!(w.server.conns.is_empty());
        assert!(w.client.active.is_empty());
        assert!(w.server.active.is_empty());
        assert_eq!(w.client.pool.outstanding(), 0);
        assert_eq!(w.server.pool.outstanding(), pool_before);
        // Churn left no readiness behind: one drain and the queue is
        // empty (stale entries were compacted, not accumulated).
        assert!(w.server.events.ready_count() < 8);
        let mut ev = Vec::new();
        w.server.poll_events(&mut ev);
        assert!(ev.is_empty(), "stale readiness after churn: {ev:?}");
        assert_eq!(w.server.events.ready_count(), 0);
        // Every stream slot was returned: only the listener survives.
        let live = |s: &NetStack| s.socks.iter().filter(|s| s.is_some()).count();
        assert_eq!(live(&w.client), 0);
        assert_eq!(live(&w.server), 1);
        // The port allocator still has its full range: nothing pinned.
        assert!(w.client.alloc_ephemeral(SERVER_IP, 5201).is_ok());
        assert!(w.client.udp_ports.is_empty() && w.server.udp_ports.is_empty());
    }

    #[test]
    fn packet_processing_charges_cycles() {
        let mut w = world();
        let before = w.m.clock().cycles();
        let _ = w.establish(5201);
        assert!(w.m.clock().cycles() > before);
    }

    #[test]
    fn xen_tax_increases_per_packet_cost() {
        let mut base = world();
        let _ = base.establish(5201);
        let kvm_cycles = base.m.clock().cycles();

        let mut xen = world();
        xen.server.extra_per_packet = 900;
        xen.client.extra_per_packet = 900;
        let _ = xen.establish(5201);
        assert!(xen.m.clock().cycles() > kvm_cycles);
    }
}
