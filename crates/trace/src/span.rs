//! Causal, request-scoped span tracing (PR 7).
//!
//! A [`SpanId`] is allocated per request (one Redis command, one iperf
//! receive burst) and every subsystem the request touches — gates,
//! doorbells, the scheduler, kernel message queues, the net stack —
//! records a `[t0, t1]` interval against the *current* span. Events land
//! in per-vCPU shard rings ([`SpanRing`]) keyed by the plan-determined
//! vCPU of the compartment doing the work, never by scheduler state, so
//! a deterministic run produces the byte-identical event stream at any
//! `--vcpus` width (the run-queue topology is invisible, see PR 6).
//!
//! Two consumers:
//!
//! * [`SpanTrace::to_chrome_json`] renders the merged stream as Chrome
//!   trace-event JSON (Perfetto-loadable): one track per vCPU, one per
//!   compartment, `s`/`f` flow arrows across gate crossings and
//!   doorbells, async `b`/`e` pairs for whole requests.
//! * [`SpanTrace::latency_rows`] folds completed requests into exact
//!   per-`(app, backend)` p50/p99/p999 end-to-end latency — every sample
//!   is kept and sorted on demand, so the percentiles are exact and
//!   deterministic, not bucketed like the PR-2 histograms.
//!
//! Like every probe since PR 2, the whole module compiles to no-ops
//! under the `trace-off` feature: probes never touch the machine clock,
//! so simulated cycles are identical with tracing on or off by
//! construction.

/// A request-scoped trace identifier. `SpanId(0)` means "no span".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span (no request in flight, or tracing compiled out).
    pub const NONE: SpanId = SpanId(0);

    /// True for any allocated (non-null) span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// What kind of work a span interval covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole request, end to end (`begin_request`/`end_request`).
    Request,
    /// One gate crossing (enter + exit window).
    Gate,
    /// A VM-RPC doorbell ring (`Machine::notify`, coalesced or not).
    Doorbell,
    /// A scheduler context switch.
    Sched,
    /// A kernel message-queue hop (send or receive).
    MqHop,
    /// Net-stack work (segment rx/tx).
    Net,
    /// An injected fault attributed to the in-flight request.
    Fault,
    /// A live gate-backend migration phase (drain start/end, swap,
    /// first post-swap crossing).
    Migrate,
}

impl SpanKind {
    /// Short machine-readable tag (also the Chrome trace category).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Gate => "gate",
            SpanKind::Doorbell => "doorbell",
            SpanKind::Sched => "sched",
            SpanKind::MqHop => "mq",
            SpanKind::Net => "net",
            SpanKind::Fault => "fault",
            SpanKind::Migrate => "migrate",
        }
    }
}

/// One recorded interval, attributed to a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Sequence number within the shard ring.
    pub seq: u64,
    /// Owning request span (may be [`SpanId::NONE`] for unattributed
    /// background work, e.g. scheduler switches between requests).
    pub span: SpanId,
    /// Work class.
    pub kind: SpanKind,
    /// Mechanism or subsystem label (`"MPK (shared stack)"`, …).
    pub label: &'static str,
    /// Source compartment / thread id (kind-specific).
    pub src: u16,
    /// Destination compartment id (kind-specific).
    pub dst: u16,
    /// Interval start, simulated cycles.
    pub t0: u64,
    /// Interval end, simulated cycles (`>= t0`).
    pub t1: u64,
}

/// Default per-vCPU span ring capacity. Sized so a shard's buffer
/// (~56 B/event) stays around 57 KiB — inside a typical L2 — because the
/// overwrite path cycles through the whole buffer and every event write
/// lands on a cold line once the ring outgrows the cache.
pub const DEFAULT_SPAN_RING_CAP: usize = 1024;

/// A bounded per-vCPU span ring with overwrite-oldest semantics,
/// mirroring [`crate::EventRing`]: `pushed() - len()` events were lost.
#[derive(Debug, Clone)]
pub struct SpanRing {
    cap: usize,
    next_seq: u64,
    head: usize,
    buf: Vec<SpanEvent>,
}

impl Default for SpanRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_RING_CAP)
    }
}

impl SpanRing {
    /// A ring holding at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            next_seq: 0,
            head: 0,
            buf: Vec::new(),
        }
    }

    /// Records an event, overwriting the oldest when full. No-op under
    /// `trace-off` (the sequence counter does not advance either, so
    /// `pushed()` stays 0 — same contract as [`crate::EventRing`]).
    #[allow(unused_variables, unused_mut)]
    #[inline]
    pub fn push(&mut self, mut ev: SpanEvent) {
        #[cfg(not(feature = "trace-off"))]
        {
            ev.seq = self.next_seq;
            self.next_seq += 1;
            if self.buf.len() < self.cap {
                self.buf.push(ev);
            } else {
                self.buf[self.head] = ev;
                self.head += 1;
                if self.head == self.cap {
                    self.head = 0;
                }
            }
        }
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Events lost to overwrite.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// A completed-request latency sample set for one `(app, backend)` key.
#[derive(Debug, Clone, Default)]
struct LatencySamples {
    cycles: Vec<u64>,
}

/// Exact percentile over a sorted slice: the smallest sample `x` such
/// that at least `p` of the distribution is `<= x` (nearest-rank).
fn percentile(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (n * num).div_ceil(den).max(1);
    sorted[(rank - 1) as usize]
}

/// Exact per-`(app, backend)` request-latency percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanLatencyRow {
    /// Application that issued the requests (`"redis"`, `"iperf"`).
    pub app: &'static str,
    /// Isolation backend label the image was built with.
    pub backend: &'static str,
    /// Completed requests measured.
    pub count: u64,
    /// Median end-to-end latency, simulated cycles.
    pub p50: u64,
    /// 99th-percentile latency, simulated cycles.
    pub p99: u64,
    /// 99.9th-percentile latency, simulated cycles.
    pub p999: u64,
}

/// Per-shard ring accounting, for the `--stats` dropped-events report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRingStats {
    /// Shard (vCPU) index.
    pub shard: usize,
    /// Events ever pushed to the shard.
    pub pushed: u64,
    /// Events lost to overwrite.
    pub dropped: u64,
}

/// An open (begun, not yet ended) request span.
#[derive(Debug, Clone, Copy)]
struct OpenRequest {
    span: SpanId,
    app: &'static str,
    backend: &'static str,
    t0: u64,
}

/// The per-machine span tracer. Lives in `Machine` next to the fault and
/// TLB traces so every subsystem holding `&mut Machine` can record.
#[derive(Debug, Clone, Default)]
pub struct SpanTrace {
    next_span: u64,
    current: SpanId,
    shards: Vec<SpanRing>,
    open: Vec<OpenRequest>,
    // A flat association list, not a map: one workload uses one or two
    // `(app, backend)` keys, and the linear scan on the request-complete
    // path is far cheaper than tree/hash lookups at that cardinality.
    latency: Vec<((&'static str, &'static str), LatencySamples)>,
}

impl SpanTrace {
    /// An empty tracer (shards grow on demand).
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn shard_mut(&mut self, vcpu: u16) -> &mut SpanRing {
        let idx = vcpu as usize;
        while self.shards.len() <= idx {
            self.shards.push(SpanRing::default());
        }
        &mut self.shards[idx]
    }

    /// The span currently attributed to new events ([`SpanId::NONE`]
    /// when no request is in flight).
    #[inline]
    pub fn current(&self) -> SpanId {
        self.current
    }

    /// Sets the span attributed to subsequent events.
    #[allow(unused_variables)]
    #[inline]
    pub fn set_current(&mut self, span: SpanId) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.current = span;
        }
    }

    /// Opens a request span at `t0` and makes it current. Returns
    /// [`SpanId::NONE`] under `trace-off`.
    #[allow(unused_variables)]
    #[inline]
    pub fn begin_request(
        &mut self,
        app: &'static str,
        backend: &'static str,
        vcpu: u16,
        t0: u64,
    ) -> SpanId {
        #[cfg(not(feature = "trace-off"))]
        {
            self.next_span += 1;
            let span = SpanId(self.next_span);
            self.open.push(OpenRequest {
                span,
                app,
                backend,
                t0,
            });
            self.current = span;
            span
        }
        #[cfg(feature = "trace-off")]
        {
            SpanId::NONE
        }
    }

    /// Closes a request span at `t1`: records the end-to-end interval in
    /// the vCPU's shard ring and folds `t1 - t0` into the exact latency
    /// accumulator for the request's `(app, backend)` key.
    #[allow(unused_variables)]
    #[inline]
    pub fn end_request(&mut self, span: SpanId, vcpu: u16, t1: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            let Some(pos) = self.open.iter().position(|o| o.span == span) else {
                return;
            };
            let o = self.open.remove(pos);
            let key = (o.app, o.backend);
            let samples = match self.latency.iter_mut().position(|(k, _)| *k == key) {
                Some(i) => &mut self.latency[i].1,
                None => {
                    self.latency.push((key, LatencySamples::default()));
                    &mut self.latency.last_mut().expect("just pushed").1
                }
            };
            samples.cycles.push(t1.saturating_sub(o.t0));
            self.shard_mut(vcpu).push(SpanEvent {
                seq: 0,
                span,
                kind: SpanKind::Request,
                label: o.app,
                src: vcpu,
                dst: vcpu,
                t0: o.t0,
                t1,
            });
            if self.current == span {
                self.current = SpanId::NONE;
            }
        }
    }

    /// Records a work interval against the current span on `vcpu`'s
    /// shard. Never touches a clock — callers pass the timestamps they
    /// already have, so the probe adds zero simulated cycles.
    #[allow(unused_variables)]
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn record(
        &mut self,
        vcpu: u16,
        kind: SpanKind,
        label: &'static str,
        src: u16,
        dst: u16,
        t0: u64,
        t1: u64,
    ) {
        #[cfg(not(feature = "trace-off"))]
        {
            let span = self.current;
            self.shard_mut(vcpu).push(SpanEvent {
                seq: 0,
                span,
                kind,
                label,
                src,
                dst,
                t0,
                t1,
            });
        }
    }

    /// Total events ever pushed across all shards.
    pub fn pushed(&self) -> u64 {
        self.shards.iter().map(SpanRing::pushed).sum()
    }

    /// Per-shard push/drop accounting, shard order (rows only for shards
    /// that ever recorded, so the report stays workload-shaped).
    pub fn ring_stats(&self) -> Vec<SpanRingStats> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, r)| r.pushed() > 0)
            .map(|(shard, r)| SpanRingStats {
                shard,
                pushed: r.pushed(),
                dropped: r.dropped(),
            })
            .collect()
    }

    /// Exact latency percentiles per `(app, backend)`, key order.
    pub fn latency_rows(&self) -> Vec<SpanLatencyRow> {
        let mut rows: Vec<SpanLatencyRow> = self
            .latency
            .iter()
            .filter(|(_, s)| !s.cycles.is_empty())
            .map(|&((app, backend), ref s)| {
                let mut sorted = s.cycles.clone();
                sorted.sort_unstable();
                SpanLatencyRow {
                    app,
                    backend,
                    count: sorted.len() as u64,
                    p50: percentile(&sorted, 50, 100),
                    p99: percentile(&sorted, 99, 100),
                    p999: percentile(&sorted, 999, 1000),
                }
            })
            .collect();
        rows.sort_by_key(|r| (r.app, r.backend));
        rows
    }

    /// All retained events merged across shards in deterministic order:
    /// stable-sorted by `(t0, t1, shard, seq)`. Shard assignment is
    /// plan-determined, so this stream is byte-identical at any
    /// `--vcpus` width in deterministic mode.
    pub fn merged_events(&self) -> Vec<(usize, SpanEvent)> {
        let mut all: Vec<(usize, SpanEvent)> = Vec::new();
        for (shard, ring) in self.shards.iter().enumerate() {
            for ev in ring.events() {
                all.push((shard, ev));
            }
        }
        all.sort_by_key(|(shard, ev)| (ev.t0, ev.t1, *shard, ev.seq));
        all
    }

    /// Renders the merged stream as Chrome trace-event JSON (loadable in
    /// Perfetto / `chrome://tracing`).
    ///
    /// Layout: pid 1 is the vCPU process (one thread track per shard),
    /// pid 2 is the compartment process (one thread track per
    /// compartment, named via `names`). Every interval is an `"X"`
    /// complete slice on its vCPU track; gate and doorbell crossings
    /// additionally draw an `"s"`→`"f"` flow arrow from the source to
    /// the destination compartment track (always emitted as a pair, so
    /// flow begin/end stay balanced); whole requests are async
    /// `"b"`/`"e"` pairs on the owning compartment track. Timestamps are
    /// raw simulated cycles.
    pub fn to_chrome_json(&self, names: &[(u16, String)]) -> String {
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };
        // Metadata: name the two processes and their threads.
        push(
            &mut out,
            &mut first,
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"vCPUs\"}}"
                .into(),
        );
        push(
            &mut out,
            &mut first,
            "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"compartments\"}}"
                .into(),
        );
        for shard in 0..self.shards.len() {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{shard},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"vcpu{shard}\"}}}}"
                ),
            );
        }
        for (id, name) in names {
            let mut esc = String::new();
            json_escape(name, &mut esc);
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"pid\":2,\"tid\":{id},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{esc}\"}}}}"
                ),
            );
        }
        let mut flow_id = 0u64;
        for (shard, ev) in self.merged_events() {
            let cat = ev.kind.label();
            let mut label = String::new();
            json_escape(ev.label, &mut label);
            match ev.kind {
                SpanKind::Request => {
                    // Async begin/end pair on the owning compartment
                    // track, id'd by the span so nested requests nest.
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"b\",\"cat\":\"{cat}\",\"name\":\"{label}\",\
                             \"id\":{},\"pid\":2,\"tid\":{},\"ts\":{}}}",
                            ev.span.0, ev.src, ev.t0
                        ),
                    );
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"e\",\"cat\":\"{cat}\",\"name\":\"{label}\",\
                             \"id\":{},\"pid\":2,\"tid\":{},\"ts\":{}}}",
                            ev.span.0, ev.src, ev.t1
                        ),
                    );
                }
                _ => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"X\",\"cat\":\"{cat}\",\"name\":\"{label}\",\
                             \"pid\":1,\"tid\":{shard},\"ts\":{},\"dur\":{},\
                             \"args\":{{\"span\":{},\"src\":{},\"dst\":{}}}}}",
                            ev.t0,
                            ev.t1.saturating_sub(ev.t0).max(1),
                            ev.span.0,
                            ev.src,
                            ev.dst
                        ),
                    );
                    if matches!(ev.kind, SpanKind::Gate | SpanKind::Doorbell) && ev.src != ev.dst {
                        flow_id += 1;
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"ph\":\"s\",\"cat\":\"{cat}\",\"name\":\"{label}\",\
                                 \"id\":{flow_id},\"pid\":2,\"tid\":{},\"ts\":{}}}",
                                ev.src, ev.t0
                            ),
                        );
                        push(
                            &mut out,
                            &mut first,
                            format!(
                                "{{\"ph\":\"f\",\"cat\":\"{cat}\",\"name\":\"{label}\",\
                                 \"bp\":\"e\",\"id\":{flow_id},\"pid\":2,\"tid\":{},\"ts\":{}}}",
                                ev.dst, ev.t1
                            ),
                        );
                    }
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escape (mirrors `snapshot::esc`).
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(all(test, not(feature = "trace-off")))]
mod tests {
    use super::*;

    #[test]
    fn request_latency_is_exact() {
        let mut t = SpanTrace::new();
        for (i, lat) in [(0u64, 10u64), (1, 20), (2, 30), (3, 40)] {
            let s = t.begin_request("redis", "direct", 0, i * 100);
            t.end_request(s, 0, i * 100 + lat);
        }
        let rows = t.latency_rows();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!((r.app, r.backend, r.count), ("redis", "direct", 4));
        assert_eq!(r.p50, 20);
        assert_eq!(r.p99, 40);
        assert_eq!(r.p999, 40);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50, 100), 50);
        assert_eq!(percentile(&s, 99, 100), 99);
        assert_eq!(percentile(&s, 999, 1000), 100);
        assert_eq!(percentile(&[7], 50, 100), 7);
        assert_eq!(percentile(&[], 50, 100), 0);
    }

    #[test]
    fn rings_overwrite_oldest_and_count_drops() {
        let mut r = SpanRing::with_capacity(2);
        for i in 0..5u64 {
            r.push(SpanEvent {
                seq: 0,
                span: SpanId::NONE,
                kind: SpanKind::Net,
                label: "net",
                src: 0,
                dst: 0,
                t0: i,
                t1: i + 1,
            });
        }
        assert_eq!(r.pushed(), 5);
        assert_eq!(r.dropped(), 3);
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].t0, evs[1].t0), (3, 4));
        assert!(evs[0].seq < evs[1].seq);
    }

    #[test]
    fn merged_events_are_time_ordered_across_shards() {
        let mut t = SpanTrace::new();
        t.record(1, SpanKind::Net, "net", 1, 1, 50, 60);
        t.record(0, SpanKind::Gate, "g", 0, 1, 10, 20);
        t.record(0, SpanKind::Gate, "g", 1, 0, 70, 80);
        let m = t.merged_events();
        let t0s: Vec<u64> = m.iter().map(|(_, e)| e.t0).collect();
        assert_eq!(t0s, vec![10, 50, 70]);
    }

    #[test]
    fn chrome_json_pairs_every_flow_start_with_a_finish() {
        let mut t = SpanTrace::new();
        let s = t.begin_request("redis", "mpk", 0, 0);
        t.record(0, SpanKind::Gate, "MPK (shared stack)", 0, 2, 5, 9);
        t.record(0, SpanKind::Doorbell, "doorbell", 0, 3, 12, 14);
        t.end_request(s, 0, 20);
        let j = t.to_chrome_json(&[(0, "app".into()), (2, "net".into())]);
        assert!(j.starts_with("{\"displayTimeUnit\""));
        assert!(j.ends_with("]}"));
        let starts = j.matches("\"ph\":\"s\"").count();
        let finishes = j.matches("\"ph\":\"f\"").count();
        assert_eq!(starts, 2);
        assert_eq!(starts, finishes);
        assert_eq!(j.matches("\"ph\":\"b\"").count(), 1);
        assert_eq!(j.matches("\"ph\":\"e\"").count(), 1);
        assert!(j.contains("\"name\":\"vcpu0\""));
        assert!(j.contains("\"name\":\"net\""));
    }

    #[test]
    fn events_attribute_to_the_current_span() {
        let mut t = SpanTrace::new();
        t.record(0, SpanKind::Sched, "switch", 0, 0, 0, 1);
        let s = t.begin_request("iperf", "vmrpc", 0, 2);
        t.record(0, SpanKind::Gate, "VM RPC (EPT)", 0, 1, 3, 4);
        t.end_request(s, 0, 5);
        t.record(0, SpanKind::Sched, "switch", 0, 0, 6, 7);
        let m = t.merged_events();
        let spans: Vec<u64> = m.iter().map(|(_, e)| e.span.0).collect();
        assert_eq!(spans, vec![0, 1, 1, 0]);
    }
}

#[cfg(all(test, feature = "trace-off"))]
mod off_tests {
    use super::*;

    /// Under `trace-off` every probe is a no-op: no spans allocated, no
    /// events pushed, no latency samples — and the API never touches a
    /// clock, so simulated cycles are unchanged by construction.
    #[test]
    fn probes_compile_to_no_ops() {
        let mut t = SpanTrace::new();
        let s = t.begin_request("redis", "direct", 0, 0);
        assert_eq!(s, SpanId::NONE);
        t.record(0, SpanKind::Gate, "g", 0, 1, 1, 2);
        t.end_request(s, 0, 10);
        assert_eq!(t.pushed(), 0);
        assert!(t.ring_stats().is_empty());
        assert!(t.latency_rows().is_empty());
        assert_eq!(t.current(), SpanId::NONE);
    }
}
