//! Fixed-bucket log2 cycle histograms.
//!
//! A [`CycleHist`] is a constant-size array of power-of-two buckets:
//! recording a sample is a `leading_zeros` plus an array increment, with
//! no allocation and no branching beyond a clamp. Percentiles are read
//! back as the upper bound of the bucket containing the requested rank,
//! which is exact to within a factor of two — plenty for "did this gate
//! cost 100 or 4000 cycles" questions.

/// Number of log2 buckets. Bucket 0 holds the value 0; bucket `i` (for
/// `i >= 1`) holds values in `[2^(i-1), 2^i - 1]`. 48 buckets cover every
/// latency the simulated clock can express in a benchmark run.
pub const HIST_BUCKETS: usize = 48;

/// A log2-bucketed histogram of cycle counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleHist {
    counts: [u64; HIST_BUCKETS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for CycleHist {
    fn default() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl CycleHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, otherwise the bit length of the
    /// value, clamped to the last bucket.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (the value reported for
    /// percentiles landing in that bucket).
    #[inline]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= HIST_BUCKETS - 1 {
            // The last bucket is a catch-all for everything larger.
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.counts[Self::bucket_index(value)] += 1;
            self.total += 1;
            self.sum = self.sum.saturating_add(value);
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.total).unwrap_or(0)
    }

    /// The value at percentile `p` (0.0..=1.0): the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(p * total)`.
    /// The top bucket reports the exact observed maximum instead of its
    /// (huge) nominal bound. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Convenience: (p50, p90, p99).
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
        )
    }

    /// Raw bucket counts (for serialization).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &CycleHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for i in 1..HIST_BUCKETS {
            let ub = CycleHist::bucket_upper_bound(i);
            assert!(ub > prev, "bucket {i} bound {ub} <= {prev}");
            prev = ub;
        }
    }

    #[test]
    fn values_land_in_their_bucket() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = CycleHist::bucket_index(v);
            assert!(v <= CycleHist::bucket_upper_bound(i));
            if i > 0 {
                assert!(v > CycleHist::bucket_upper_bound(i - 1));
            }
        }
    }

    #[cfg(not(feature = "trace-off"))]
    #[test]
    fn percentiles_are_ordered() {
        let mut h = CycleHist::new();
        for v in [90u64, 100, 110, 5000, 5100, 5200, 5300, 90000] {
            h.record(v);
        }
        let (p50, p90, p99) = h.quantiles();
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max());
        assert_eq!(h.count(), 8);
    }

    #[cfg(not(feature = "trace-off"))]
    #[test]
    fn merge_adds_counts() {
        let mut a = CycleHist::new();
        let mut b = CycleHist::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.min(), 10);
    }

    #[cfg(feature = "trace-off")]
    #[test]
    fn record_is_a_no_op_when_traced_off() {
        let mut h = CycleHist::new();
        h.record(12345);
        assert_eq!(h.count(), 0);
    }
}
