//! The aggregated, serializable view of a run's telemetry.
//!
//! A [`StatsSnapshot`] is plain data: every row type is public and the
//! whole thing serializes to JSON with a hand-rolled writer (the build
//! environment has no serde). Aggregation from the live trace structs is
//! done by [`crate::TraceRegistry`].

use std::fmt::Write as _;

/// One (mechanism, src, dst) gate-pair row.
#[derive(Debug, Clone, PartialEq)]
pub struct GatePairRow {
    /// Mechanism label (e.g. `"MPK (shared stack)"`).
    pub mechanism: &'static str,
    /// Source compartment id.
    pub src: u16,
    /// Destination compartment id.
    pub dst: u16,
    /// Source compartment name.
    pub src_name: String,
    /// Destination compartment name.
    pub dst_name: String,
    /// Completed round-trip crossings.
    pub crossings: u64,
    /// Argument + return bytes marshalled.
    pub bytes: u64,
    /// Cycles spent in enter/exit sequences for this pair.
    pub gate_cycles: u64,
}

/// Per-mechanism crossing-latency summary.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismRow {
    /// Mechanism label.
    pub mechanism: &'static str,
    /// Crossings recorded.
    pub count: u64,
    /// Median crossing cost in cycles (log2-bucket upper bound).
    pub p50: u64,
    /// 90th-percentile crossing cost.
    pub p90: u64,
    /// 99th-percentile crossing cost.
    pub p99: u64,
    /// Mean crossing cost.
    pub mean: u64,
    /// Largest observed crossing cost.
    pub max: u64,
}

/// Per-mechanism batched-crossing summary (sizes of `cross_batch`
/// submissions, recorded identically whether the vectored fast path or
/// the reference loop executed them).
#[derive(Debug, Clone, PartialEq)]
pub struct GateBatchRow {
    /// Mechanism label.
    pub mechanism: &'static str,
    /// Batches submitted.
    pub batches: u64,
    /// Calls issued across all batches.
    pub calls: u64,
    /// Median batch size (log2-bucket upper bound).
    pub p50: u64,
    /// Largest observed batch.
    pub max: u64,
}

/// Async gate-ring counters (the PR-8 submission/completion rings).
/// All host-side bookkeeping totals — the simulated cycle stream is
/// identical with the rings in or out of the path, so this block is
/// purely additive to the baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncGatesSnapshot {
    /// Descriptors accepted onto submission rings.
    pub submitted: u64,
    /// Completions delivered.
    pub completed: u64,
    /// Ring flushes that drained at least one descriptor.
    pub flushes: u64,
    /// Pending submissions cancelled.
    pub cancelled: u64,
    /// Submissions rejected on a full SQ.
    pub sq_full: u64,
    /// Reaps rejected on an empty CQ.
    pub cq_empty: u64,
}

/// Live gate-backend migration counters (the quiescence protocol).
/// The block is all-zero — and therefore byte-stable against the CI
/// baseline — on any run that never requests a migration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationsSnapshot {
    /// Migrations requested (immediate or deferred).
    pub requested: u64,
    /// Backend swaps completed.
    pub completed: u64,
    /// Requests that had to wait for quiescence.
    pub deferred: u64,
    /// SQE submissions refused by the admission stop while draining.
    pub rejected_submits: u64,
    /// Pending SQEs carried across swaps (re-issued via the new backend).
    pub requeued_sqes: u64,
    /// Ready CQEs preserved across swaps.
    pub preserved_cqes: u64,
    /// Simulated cycles spent draining, summed over completed swaps.
    pub drain_cycles_total: u64,
    /// Longest single drain window.
    pub drain_cycles_max: u64,
    /// Swaps that raised the isolation rank (policy escalations).
    pub escalations: u64,
    /// Swaps that lowered it (policy relaxations).
    pub relaxations: u64,
}

/// Scheduler summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedSnapshot {
    /// Thread-to-thread context switches.
    pub switches: u64,
    /// Executor steps run.
    pub steps: u64,
    /// Sum of run-queue depth samples (one per pick).
    pub depth_sum: u64,
    /// Number of depth samples.
    pub depth_samples: u64,
    /// Deepest observed run queue.
    pub depth_max: u64,
    /// Per-task total run cycles, as (thread id, cycles).
    pub task_cycles: Vec<(u32, u64)>,
}

impl SchedSnapshot {
    /// Mean run-queue depth ×1000 (integer, avoids float plumbing).
    pub fn avg_depth_milli(&self) -> u64 {
        (self.depth_sum * 1000)
            .checked_div(self.depth_samples)
            .unwrap_or(0)
    }
}

/// Per-compartment allocator pressure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AllocRow {
    /// Compartment id.
    pub compartment: u16,
    /// Compartment name.
    pub name: String,
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Bytes currently live.
    pub bytes_in_use: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Failed allocation requests.
    pub failures: u64,
}

/// Fault counts by class.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultKindRow {
    /// Fault class tag (e.g. `"pkey-violation"`).
    pub kind: &'static str,
    /// Occurrences.
    pub count: u64,
}

/// Protection-key violations attributed to the compartment owning the key.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCompartmentRow {
    /// Compartment id owning the faulted key.
    pub compartment: u16,
    /// Compartment name.
    pub name: String,
    /// Pkey violations against this compartment's memory.
    pub count: u64,
}

/// Software-TLB summary (see `TlbTrace` in the crate root).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbSnapshot {
    /// Translations served from the cache.
    pub hits: u64,
    /// Lookups that fell back to the page-table walk.
    pub misses: u64,
    /// Generation-bumping page-table mutations (lazy whole-VM flushes).
    pub flushes: u64,
}

impl TlbSnapshot {
    /// Hit rate ×1000 (integer, avoids float plumbing).
    pub fn hit_rate_milli(&self) -> u64 {
        (self.hits * 1000)
            .checked_div(self.hits + self.misses)
            .unwrap_or(0)
    }
}

/// Network stack summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// TCP segments received and demuxed to a connection.
    pub rx_segments: u64,
    /// TCP segments transmitted.
    pub tx_segments: u64,
    /// UDP datagrams delivered.
    pub rx_datagrams: u64,
    /// Frames/segments dropped at demux.
    pub drops: u64,
    /// SYNs dropped because the accept backlog was full.
    pub backlog_overflows: u64,
    /// TCP retransmissions.
    pub retransmits: u64,
}

/// Serving-tier counters: the readiness layer (`EventQueue`) plus the
/// cooperative per-connection executor. All host-side bookkeeping —
/// posting an event or running a task step charges no simulated cycles
/// beyond the work the task itself performs, so this block is purely
/// additive to the baseline figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingSnapshot {
    /// Readiness events posted (socket newly enqueued as ready).
    pub events_posted: u64,
    /// Events merged into an already-queued socket entry.
    pub events_coalesced: u64,
    /// `EventQueue::poll` calls issued.
    pub polls: u64,
    /// Ready sockets delivered across all polls.
    pub events_delivered: u64,
    /// Executor tasks spawned.
    pub tasks_spawned: u64,
    /// Executor task steps run.
    pub tasks_run: u64,
    /// Task wakeups delivered.
    pub wakeups: u64,
    /// Cross-shard task steals (free-running mode only).
    pub steals: u64,
}

/// One event row, merged across all rings.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRow {
    /// Sequence number within the source ring.
    pub seq: u64,
    /// Machine-clock timestamp in cycles.
    pub cycles: u64,
    /// Compartment the ring belongs to.
    pub compartment: u16,
    /// Event class tag.
    pub kind: &'static str,
    /// Kind-specific payload.
    pub detail: u64,
}

/// Exact end-to-end request latency percentiles for one
/// `(app, backend)` pair, from the PR-7 span tracer. Unlike
/// [`MechanismRow`] these are exact (every sample retained and sorted),
/// not log2-bucket upper bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRow {
    /// Application that issued the requests (`"redis"`, `"iperf"`).
    pub app: &'static str,
    /// Isolation backend label the image was built with.
    pub backend: &'static str,
    /// Completed requests measured.
    pub count: u64,
    /// Median end-to-end latency, simulated cycles.
    pub p50: u64,
    /// 99th-percentile latency, simulated cycles.
    pub p99: u64,
    /// 99.9th-percentile latency, simulated cycles.
    pub p999: u64,
}

/// Push/overwrite accounting for one bounded event or span ring, so
/// evidence lost to overwrite-oldest truncation is visible in `--stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingDropRow {
    /// Which subsystem owns the ring (`"gates"`, `"sched"`, `"faults"`,
    /// `"allocs"`, `"net"`, `"spans"`).
    pub subsystem: &'static str,
    /// Ring owner within the subsystem (compartment id, or shard index
    /// for `"spans"`).
    pub owner: u16,
    /// Events ever pushed to the ring.
    pub pushed: u64,
    /// Events lost to overwrite.
    pub dropped: u64,
}

/// Everything the telemetry layer knows about one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Machine-clock cycles elapsed over the measured window.
    pub elapsed_cycles: u64,
    /// Same-compartment calls that compiled down to direct calls.
    pub direct_calls: u64,
    /// Per-(mechanism, src, dst) crossing rows, sorted by crossings desc.
    pub gate_pairs: Vec<GatePairRow>,
    /// Per-mechanism latency summaries.
    pub mechanisms: Vec<MechanismRow>,
    /// Per-mechanism batched-crossing size summaries.
    pub gate_batch: Vec<GateBatchRow>,
    /// Async gate-ring counters.
    pub async_gates: AsyncGatesSnapshot,
    /// Live gate-backend migration counters.
    pub migrations: MigrationsSnapshot,
    /// Scheduler summary.
    pub sched: SchedSnapshot,
    /// Per-compartment allocator rows.
    pub allocs: Vec<AllocRow>,
    /// Fault counts by class.
    pub fault_kinds: Vec<FaultKindRow>,
    /// Pkey violations by owning compartment.
    pub fault_compartments: Vec<FaultCompartmentRow>,
    /// Software-TLB counters.
    pub tlb: TlbSnapshot,
    /// Network stack counters.
    pub net: NetSnapshot,
    /// Serving-tier counters (readiness layer + cooperative executor).
    pub serving: ServingSnapshot,
    /// Exact per-(app, backend) request latency percentiles.
    pub latency: Vec<LatencyRow>,
    /// Per-ring push/drop accounting (sorted by subsystem, owner).
    pub ring_drops: Vec<RingDropRow>,
    /// Most recent events across all rings (time-ordered).
    pub events: Vec<EventRow>,
    /// Events lost to ring overwriting, summed over all rings.
    pub events_overwritten: u64,
}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl StatsSnapshot {
    /// Serializes the snapshot as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push('{');
        let _ = write!(o, "\"elapsed_cycles\":{},", self.elapsed_cycles);
        let _ = write!(o, "\"direct_calls\":{},", self.direct_calls);

        o.push_str("\"gate_pairs\":[");
        for (i, r) in self.gate_pairs.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"mechanism\":");
            esc(r.mechanism, &mut o);
            let _ = write!(o, ",\"src\":{},\"dst\":{},", r.src, r.dst);
            o.push_str("\"src_name\":");
            esc(&r.src_name, &mut o);
            o.push_str(",\"dst_name\":");
            esc(&r.dst_name, &mut o);
            let _ = write!(
                o,
                ",\"crossings\":{},\"bytes\":{},\"gate_cycles\":{}}}",
                r.crossings, r.bytes, r.gate_cycles
            );
        }
        o.push_str("],");

        o.push_str("\"mechanisms\":[");
        for (i, r) in self.mechanisms.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"mechanism\":");
            esc(r.mechanism, &mut o);
            let _ = write!(
                o,
                ",\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"mean\":{},\"max\":{}}}",
                r.count, r.p50, r.p90, r.p99, r.mean, r.max
            );
        }
        o.push_str("],");

        o.push_str("\"gate_batch\":[");
        for (i, r) in self.gate_batch.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"mechanism\":");
            esc(r.mechanism, &mut o);
            let _ = write!(
                o,
                ",\"batches\":{},\"calls\":{},\"p50\":{},\"max\":{}}}",
                r.batches, r.calls, r.p50, r.max
            );
        }
        o.push_str("],");

        let a = &self.async_gates;
        let _ = write!(
            o,
            "\"async_gates\":{{\"submitted\":{},\"completed\":{},\"flushes\":{},\"cancelled\":{},\"sq_full\":{},\"cq_empty\":{}}},",
            a.submitted, a.completed, a.flushes, a.cancelled, a.sq_full, a.cq_empty
        );

        let mg = &self.migrations;
        let _ = write!(
            o,
            "\"migrations\":{{\"requested\":{},\"completed\":{},\"deferred\":{},\"rejected_submits\":{},\"requeued_sqes\":{},\"preserved_cqes\":{},\"drain_cycles_total\":{},\"drain_cycles_max\":{},\"escalations\":{},\"relaxations\":{}}},",
            mg.requested,
            mg.completed,
            mg.deferred,
            mg.rejected_submits,
            mg.requeued_sqes,
            mg.preserved_cqes,
            mg.drain_cycles_total,
            mg.drain_cycles_max,
            mg.escalations,
            mg.relaxations
        );

        let s = &self.sched;
        let _ = write!(
            o,
            "\"sched\":{{\"switches\":{},\"steps\":{},\"avg_depth_milli\":{},\"depth_max\":{},\"task_cycles\":[",
            s.switches,
            s.steps,
            s.avg_depth_milli(),
            s.depth_max
        );
        for (i, (tid, cy)) in s.task_cycles.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"tid\":{tid},\"cycles\":{cy}}}");
        }
        o.push_str("]},");

        o.push_str("\"allocs\":[");
        for (i, r) in self.allocs.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"compartment\":{},\"name\":", r.compartment);
            esc(&r.name, &mut o);
            let _ = write!(
                o,
                ",\"allocs\":{},\"frees\":{},\"bytes_in_use\":{},\"peak_bytes\":{},\"failures\":{}}}",
                r.allocs, r.frees, r.bytes_in_use, r.peak_bytes, r.failures
            );
        }
        o.push_str("],");

        o.push_str("\"fault_kinds\":[");
        for (i, r) in self.fault_kinds.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"kind\":");
            esc(r.kind, &mut o);
            let _ = write!(o, ",\"count\":{}}}", r.count);
        }
        o.push_str("],");

        o.push_str("\"fault_compartments\":[");
        for (i, r) in self.fault_compartments.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"compartment\":{},\"name\":", r.compartment);
            esc(&r.name, &mut o);
            let _ = write!(o, ",\"count\":{}}}", r.count);
        }
        o.push_str("],");

        let t = &self.tlb;
        let _ = write!(
            o,
            "\"tlb\":{{\"hits\":{},\"misses\":{},\"flushes\":{},\"hit_rate_milli\":{}}},",
            t.hits,
            t.misses,
            t.flushes,
            t.hit_rate_milli()
        );

        let n = &self.net;
        let _ = write!(
            o,
            "\"net\":{{\"rx_segments\":{},\"tx_segments\":{},\"rx_datagrams\":{},\"drops\":{},\"backlog_overflows\":{},\"retransmits\":{}}},",
            n.rx_segments, n.tx_segments, n.rx_datagrams, n.drops, n.backlog_overflows, n.retransmits
        );

        let sv = &self.serving;
        let _ = write!(
            o,
            "\"serving\":{{\"events_posted\":{},\"events_coalesced\":{},\"polls\":{},\"events_delivered\":{},\"tasks_spawned\":{},\"tasks_run\":{},\"wakeups\":{},\"steals\":{}}},",
            sv.events_posted,
            sv.events_coalesced,
            sv.polls,
            sv.events_delivered,
            sv.tasks_spawned,
            sv.tasks_run,
            sv.wakeups,
            sv.steals
        );

        o.push_str("\"latency\":[");
        for (i, r) in self.latency.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"app\":");
            esc(r.app, &mut o);
            o.push_str(",\"backend\":");
            esc(r.backend, &mut o);
            let _ = write!(
                o,
                ",\"count\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}",
                r.count, r.p50, r.p99, r.p999
            );
        }
        o.push_str("],");

        o.push_str("\"ring_drops\":[");
        for (i, r) in self.ring_drops.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"subsystem\":");
            esc(r.subsystem, &mut o);
            let _ = write!(
                o,
                ",\"owner\":{},\"pushed\":{},\"dropped\":{}}}",
                r.owner, r.pushed, r.dropped
            );
        }
        o.push_str("],");

        o.push_str("\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "{{\"seq\":{},\"cycles\":{},\"compartment\":{},\"kind\":",
                e.seq, e.cycles, e.compartment
            );
            esc(e.kind, &mut o);
            let _ = write!(o, ",\"detail\":{}}}", e.detail);
        }
        o.push_str("],");
        let _ = write!(o, "\"events_overwritten\":{}", self.events_overwritten);
        o.push('}');
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_carries_rows() {
        let snap = StatsSnapshot {
            elapsed_cycles: 1000,
            direct_calls: 3,
            gate_pairs: vec![GatePairRow {
                mechanism: "MPK (shared stack)",
                src: 0,
                dst: 1,
                src_name: "rest".into(),
                dst_name: "net \"quoted\"".into(),
                crossings: 42,
                bytes: 128,
                gate_cycles: 9000,
            }],
            mechanisms: vec![MechanismRow {
                mechanism: "MPK (shared stack)",
                count: 42,
                p50: 255,
                p90: 255,
                p99: 511,
                mean: 214,
                max: 400,
            }],
            ..Default::default()
        };
        let j = snap.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"crossings\":42"));
        assert!(j.contains("\"p99\":511"));
        assert!(j.contains("net \\\"quoted\\\""));
        // Balanced braces/brackets (no string content to confuse this
        // beyond the escaped quotes handled above).
        let depth = j.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }
}
