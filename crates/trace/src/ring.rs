//! Bounded per-compartment event rings with overwrite-oldest semantics.
//!
//! Each recorded [`Event`] carries a monotonically increasing sequence
//! number, so a reader can tell how many events were overwritten
//! (`next_seq - len`) even after the ring wrapped. The backing store is
//! allocated once at construction; pushes never allocate.

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Control entered a compartment through a gate.
    GateEnter,
    /// Control returned from a compartment through a gate.
    GateExit,
    /// A hardware fault (protection-key violation, page fault, …).
    Fault,
    /// The scheduler switched threads.
    CtxSwitch,
    /// An allocation request failed.
    AllocFail,
    /// The net stack dropped a packet at demux.
    PacketDrop,
    /// A fault was deliberately injected by the chaos layer
    /// (`flexos-inject`), as opposed to raised by enforcement.
    Injected,
}

impl EventKind {
    /// Short machine-readable tag.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::GateEnter => "gate-enter",
            EventKind::GateExit => "gate-exit",
            EventKind::Fault => "fault",
            EventKind::CtxSwitch => "ctx-switch",
            EventKind::AllocFail => "alloc-fail",
            EventKind::PacketDrop => "packet-drop",
            EventKind::Injected => "injected",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Sequence number, unique and increasing within one ring.
    pub seq: u64,
    /// Machine-clock timestamp in cycles.
    pub cycles: u64,
    /// Event class.
    pub kind: EventKind,
    /// Kind-specific payload (e.g. packed src/dst compartment ids for
    /// gate events, a thread id for context switches).
    pub detail: u64,
}

/// Default ring capacity (events kept per compartment).
pub const DEFAULT_RING_CAP: usize = 256;

/// A bounded event ring. When full, pushing overwrites the oldest event.
///
/// Backed by a flat `Vec` with a head index rather than a deque: a push
/// on a full ring is a single indexed store, which keeps the probe cheap
/// enough for per-crossing use.
#[derive(Debug, Clone)]
pub struct EventRing {
    cap: usize,
    next_seq: u64,
    head: usize,
    buf: Vec<Event>,
}

impl Default for EventRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RING_CAP)
    }
}

impl EventRing {
    /// A ring holding at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            next_seq: 0,
            head: 0,
            buf: Vec::with_capacity(cap),
        }
    }

    /// Records an event; returns its sequence number. Overwrites the
    /// oldest event when full. A no-op (returning the would-be sequence
    /// number) under `trace-off`.
    #[inline]
    pub fn push(&mut self, kind: EventKind, cycles: u64, detail: u64) -> u64 {
        let seq = self.next_seq;
        #[cfg(not(feature = "trace-off"))]
        {
            let e = Event {
                seq,
                cycles,
                kind,
                detail,
            };
            if self.buf.len() < self.cap {
                self.buf.push(e);
            } else {
                // `head` is the oldest slot; overwrite and advance.
                self.buf[self.head] = e;
                self.head += 1;
                if self.head == self.cap {
                    self.head = 0;
                }
            }
            self.next_seq += 1;
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (kind, cycles, detail);
        }
        seq
    }

    /// Maximum events the ring can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever pushed (held + overwritten).
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// Events lost to overwriting.
    pub fn overwritten(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }

    /// Drops all held events (sequence numbers keep increasing).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(all(test, not(feature = "trace-off")))]
mod tests {
    use super::*;

    #[test]
    fn overwrites_oldest_and_keeps_sequence() {
        let mut r = EventRing::with_capacity(3);
        for i in 0..5u64 {
            let seq = r.push(EventKind::CtxSwitch, i * 10, i);
            assert_eq!(seq, i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.pushed(), 5);
        assert_eq!(r.overwritten(), 2);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn push_never_reallocates() {
        let mut r = EventRing::with_capacity(8);
        let cap0 = r.buf.capacity();
        for i in 0..100 {
            r.push(EventKind::Fault, i, 0);
        }
        assert_eq!(r.buf.capacity(), cap0);
    }
}

#[cfg(all(test, feature = "trace-off"))]
mod off_tests {
    use super::*;

    #[test]
    fn push_is_a_no_op() {
        let mut r = EventRing::with_capacity(3);
        r.push(EventKind::Fault, 1, 2);
        assert!(r.is_empty());
        assert_eq!(r.pushed(), 0);
    }
}
