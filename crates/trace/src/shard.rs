//! Per-vCPU counter shards for SMP runs.
//!
//! In free-running SMP mode every vCPU's host thread drives its own
//! machine shard, and therefore its own trace structs — the existing
//! "no globals, no locks" probes stay exactly as cheap as they were
//! single-threaded. What SMP adds is *aggregation*: after the threads
//! join, shard counters are merged into one total that is identical to
//! what a single-threaded run over the union of the work would have
//! counted. (Event rings are deliberately not merged across shards —
//! ring sequence numbers are per-shard; counters are the cross-shard
//! contract.)
//!
//! Deterministic mode never shards: one host thread, one set of traces,
//! so the `--stats` JSON shape is untouched and stays byte-identical
//! across `--vcpus 1/2/4` — which the `smp-determinism` CI job enforces.

use crate::{EventQueueTrace, ExecutorTrace, NetTrace, SchedTrace, TlbTrace};

/// One `T` per vCPU, indexed by vCPU number.
#[derive(Debug, Clone, Default)]
pub struct VcpuShards<T> {
    shards: Vec<T>,
}

impl<T: Default> VcpuShards<T> {
    /// Creates `vcpus` default-initialized shards (min 1).
    pub fn new(vcpus: usize) -> Self {
        Self {
            shards: (0..vcpus.max(1)).map(|_| T::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always false: a shard set has at least one shard.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owned by `vcpu` (panics on out-of-range, like a real
    /// per-CPU array).
    pub fn shard(&self, vcpu: usize) -> &T {
        &self.shards[vcpu]
    }

    /// Mutable access to `vcpu`'s shard.
    pub fn shard_mut(&mut self, vcpu: usize) -> &mut T {
        &mut self.shards[vcpu]
    }

    /// Iterates shards in vCPU order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.shards.iter()
    }

    /// Consumes the shards in vCPU order.
    pub fn into_inner(self) -> Vec<T> {
        self.shards
    }
}

impl<T: MergeTrace + Default> VcpuShards<T> {
    /// Merges every shard into one aggregate, in vCPU order (so the
    /// result is independent of which host thread finished first).
    pub fn aggregate(&self) -> T {
        let mut total = T::default();
        for s in &self.shards {
            total.merge_from(s);
        }
        total
    }
}

/// Traces whose counters can be summed across vCPU shards.
///
/// The law every implementation upholds (checked by the unit tests
/// below and, end-to-end, by the SMP bench aggregation): merging shard
/// counters yields the same totals as recording every event into a
/// single trace, whatever the shard assignment.
pub trait MergeTrace {
    /// Adds `other`'s counters into `self`.
    fn merge_from(&mut self, other: &Self);
}

impl MergeTrace for TlbTrace {
    fn merge_from(&mut self, other: &Self) {
        self.merge_counters(other);
    }
}

impl MergeTrace for NetTrace {
    fn merge_from(&mut self, other: &Self) {
        self.merge_counters(other);
    }
}

impl MergeTrace for EventQueueTrace {
    fn merge_from(&mut self, other: &Self) {
        self.merge_counters(other);
    }
}

impl MergeTrace for ExecutorTrace {
    fn merge_from(&mut self, other: &Self) {
        self.merge_counters(other);
    }
}

impl MergeTrace for SchedSummaryShard {
    fn merge_from(&mut self, other: &Self) {
        self.switches += other.switches;
        self.steps += other.steps;
        self.steals += other.steals;
    }
}

/// A plain-counter shard for the executor: free-running workers track
/// their own switch/step/steal counts and the harness aggregates. (The
/// full [`SchedTrace`] stays per-shard — its event ring is per-thread.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedSummaryShard {
    /// Context switches on this vCPU.
    pub switches: u64,
    /// Executor steps on this vCPU.
    pub steps: u64,
    /// Work items this vCPU stole from siblings.
    pub steals: u64,
}

impl SchedSummaryShard {
    /// Captures the counters of one shard's [`SchedTrace`].
    pub fn from_trace(st: &SchedTrace, steals: u64) -> Self {
        Self {
            switches: st.switches(),
            steps: st.steps(),
            steals,
        }
    }
}

#[cfg(all(test, not(feature = "trace-off")))]
mod tests {
    use super::*;

    #[test]
    fn tlb_shards_aggregate_to_single_thread_totals() {
        // Record the same 10 events either into one trace or spread
        // over 4 shards: totals must agree.
        let mut single = TlbTrace::new();
        let mut shards: VcpuShards<TlbTrace> = VcpuShards::new(4);
        for i in 0..10usize {
            single.hit();
            shards.shard_mut(i % 4).hit();
            if i % 3 == 0 {
                single.miss();
                shards.shard_mut(i % 4).miss();
            }
        }
        let total = shards.aggregate();
        assert_eq!(total.hits(), single.hits());
        assert_eq!(total.misses(), single.misses());
        assert_eq!(total.flushes(), single.flushes());
    }

    #[test]
    fn aggregate_is_shard_order_independent_for_counters() {
        let mut a: VcpuShards<TlbTrace> = VcpuShards::new(2);
        a.shard_mut(0).hit();
        a.shard_mut(1).miss();
        let mut b: VcpuShards<TlbTrace> = VcpuShards::new(2);
        b.shard_mut(1).hit();
        b.shard_mut(0).miss();
        let (ta, tb) = (a.aggregate(), b.aggregate());
        assert_eq!(ta.hits(), tb.hits());
        assert_eq!(ta.misses(), tb.misses());
    }

    #[test]
    fn sched_summary_shards_sum() {
        let mut shards: VcpuShards<SchedSummaryShard> = VcpuShards::new(3);
        for v in 0..3 {
            *shards.shard_mut(v) = SchedSummaryShard {
                switches: 10 * (v as u64 + 1),
                steps: 100,
                steals: v as u64,
            };
        }
        let total = shards.aggregate();
        assert_eq!(total.switches, 60);
        assert_eq!(total.steps, 300);
        assert_eq!(total.steals, 3);
    }

    #[test]
    fn net_shards_aggregate() {
        let mut shards: VcpuShards<NetTrace> = VcpuShards::new(2);
        shards.shard_mut(0).on_rx_segment();
        shards.shard_mut(1).on_rx_segment();
        shards.shard_mut(1).on_tx_segment();
        shards.shard_mut(0).on_drop(5);
        let t = shards.aggregate().snapshot(0);
        assert_eq!(t.rx_segments, 2);
        assert_eq!(t.tx_segments, 1);
        assert_eq!(t.drops, 1);
    }

    #[test]
    fn serving_shards_aggregate() {
        let mut eqs: VcpuShards<EventQueueTrace> = VcpuShards::new(2);
        eqs.shard_mut(0).on_post();
        eqs.shard_mut(1).on_post();
        eqs.shard_mut(1).on_coalesce();
        eqs.shard_mut(0).on_poll(2);
        let eq = eqs.aggregate();
        assert_eq!(eq.posted(), 2);
        assert_eq!(eq.coalesced(), 1);
        assert_eq!(eq.polls(), 1);
        assert_eq!(eq.delivered(), 2);

        let mut exs: VcpuShards<ExecutorTrace> = VcpuShards::new(2);
        exs.shard_mut(0).on_spawn();
        exs.shard_mut(1).on_run();
        exs.shard_mut(1).on_wake();
        exs.shard_mut(0).on_steal();
        let ex = exs.aggregate();
        assert_eq!(
            (ex.spawned(), ex.tasks_run(), ex.wakeups(), ex.steals()),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn single_shard_is_the_degenerate_case() {
        let shards: VcpuShards<TlbTrace> = VcpuShards::new(0);
        assert_eq!(shards.len(), 1);
    }
}
