//! `flexos-trace`: per-compartment telemetry for the FlexOS reproduction.
//!
//! FlexOS's claim is that isolation cost is a dial; this crate is the
//! gauge. It provides three always-compiled primitives — counters,
//! fixed-bucket log2 [`CycleHist`]ograms, and bounded [`EventRing`]s with
//! sequence numbers — plus per-subsystem trace structs that the hot paths
//! own directly (no globals, no locks: the simulation is single-threaded
//! per image) and a [`TraceRegistry`] that aggregates everything into a
//! serializable [`StatsSnapshot`].
//!
//! Building with `--features trace-off` compiles every probe body to a
//! no-op while keeping struct layouts and APIs identical, so the
//! instrumented call sites need no `cfg` of their own.

pub mod hist;
pub mod ring;
pub mod shard;
pub mod snapshot;
pub mod span;

pub use hist::{CycleHist, HIST_BUCKETS};
pub use ring::{Event, EventKind, EventRing, DEFAULT_RING_CAP};
pub use shard::{MergeTrace, SchedSummaryShard, VcpuShards};
pub use snapshot::{
    AllocRow, AsyncGatesSnapshot, EventRow, FaultCompartmentRow, FaultKindRow, GateBatchRow,
    GatePairRow, LatencyRow, MechanismRow, MigrationsSnapshot, NetSnapshot, RingDropRow,
    SchedSnapshot, ServingSnapshot, StatsSnapshot, TlbSnapshot,
};
pub use span::{
    SpanEvent, SpanId, SpanKind, SpanLatencyRow, SpanRing, SpanRingStats, SpanTrace,
    DEFAULT_SPAN_RING_CAP,
};

use std::collections::BTreeMap;

/// Events kept in the final snapshot after merging all rings.
pub const SNAPSHOT_EVENT_CAP: usize = 64;

/// Per-(mechanism, src, dst) accumulator inside [`GateTrace`].
#[derive(Debug, Clone, Copy, Default)]
struct PairStat {
    crossings: u64,
    bytes: u64,
    gate_cycles: u64,
}

/// Telemetry owned by the gate runtime: per-pair crossing counters, a
/// per-mechanism crossing-cycle histogram, and one event ring per
/// compartment (gate enter/exit and fault events).
///
/// Pair and mechanism lookups are linear over tiny vectors with a
/// last-hit index cache: real images have a handful of (mechanism, src,
/// dst) pairs and crossings overwhelmingly repeat the previous pair, so
/// this beats a map on the hot path.
#[derive(Debug, Clone, Default)]
pub struct GateTrace {
    pairs: Vec<((&'static str, u16, u16), PairStat)>,
    hists: Vec<(&'static str, CycleHist)>,
    batch_hists: Vec<(&'static str, CycleHist)>,
    direct_calls: u64,
    rings: Vec<EventRing>,
    last_pair: usize,
    last_hist: usize,
    last_batch: usize,
}

/// Packs a (src, dst) compartment pair into an event `detail` word.
pub fn pack_pair(src: u16, dst: u16) -> u64 {
    ((src as u64) << 16) | dst as u64
}

impl GateTrace {
    /// Fresh, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    #[cfg(not(feature = "trace-off"))]
    fn ring_mut(&mut self, cpt: u16) -> &mut EventRing {
        let idx = cpt as usize;
        while self.rings.len() <= idx {
            self.rings.push(EventRing::default());
        }
        &mut self.rings[idx]
    }

    /// Records a same-compartment call that compiled to a direct call.
    #[inline]
    pub fn record_direct(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.direct_calls += 1;
        }
    }

    /// Records one completed round-trip crossing: `src` called into `dst`
    /// through `mechanism`, spending `gate_cycles` in enter+exit and
    /// marshalling `bytes`. `now` is the machine clock after the exit.
    #[inline]
    pub fn record_crossing(
        &mut self,
        mechanism: &'static str,
        src: u16,
        dst: u16,
        gate_cycles: u64,
        bytes: u64,
        now: u64,
    ) {
        #[cfg(not(feature = "trace-off"))]
        {
            // Labels come from `GateMechanism::label()` statics, so the
            // cached-hit path compares fat pointers, not contents.
            let key = (mechanism, src, dst);
            let i = match self.pairs.get(self.last_pair) {
                Some(((m, s, d), _)) if std::ptr::eq(*m, mechanism) && *s == src && *d == dst => {
                    self.last_pair
                }
                _ => match self.pairs.iter().position(|(k, _)| *k == key) {
                    Some(i) => i,
                    None => {
                        self.pairs.push((key, PairStat::default()));
                        self.pairs.len() - 1
                    }
                },
            };
            self.last_pair = i;
            let p = &mut self.pairs[i].1;
            p.crossings += 1;
            p.bytes += bytes;
            p.gate_cycles += gate_cycles;
            let h = match self.hists.get(self.last_hist) {
                Some((m, _)) if std::ptr::eq(*m, mechanism) => self.last_hist,
                _ => match self.hists.iter().position(|(m, _)| *m == mechanism) {
                    Some(i) => i,
                    None => {
                        self.hists.push((mechanism, CycleHist::new()));
                        self.hists.len() - 1
                    }
                },
            };
            self.last_hist = h;
            self.hists[h].1.record(gate_cycles);
            let detail = pack_pair(src, dst);
            let hi = src.max(dst) as usize;
            if self.rings.len() <= hi {
                self.rings.resize_with(hi + 1, EventRing::default);
            }
            self.rings[dst as usize].push(EventKind::GateEnter, now, detail);
            self.rings[src as usize].push(EventKind::GateExit, now, detail);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (mechanism, src, dst, gate_cycles, bytes, now);
        }
    }

    /// Records one batched crossing of `size` calls through `mechanism`
    /// (sizes land in a per-mechanism log2 histogram).
    ///
    /// `GateRuntime::cross_batch` records this in both the vectored and
    /// the reference (`batch_enabled = false`) path, with the identical
    /// size, so snapshots stay byte-identical across the two modes.
    #[inline]
    pub fn record_batch(&mut self, mechanism: &'static str, size: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            if size == 0 {
                return;
            }
            let h = match self.batch_hists.get(self.last_batch) {
                Some((m, _)) if std::ptr::eq(*m, mechanism) => self.last_batch,
                _ => match self.batch_hists.iter().position(|(m, _)| *m == mechanism) {
                    Some(i) => i,
                    None => {
                        self.batch_hists.push((mechanism, CycleHist::new()));
                        self.batch_hists.len() - 1
                    }
                },
            };
            self.last_batch = h;
            self.batch_hists[h].1.record(size);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (mechanism, size);
        }
    }

    /// Records an arbitrary event in compartment `cpt`'s ring.
    #[inline]
    pub fn event(&mut self, cpt: u16, kind: EventKind, now: u64, detail: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.ring_mut(cpt).push(kind, now, detail);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (cpt, kind, now, detail);
        }
    }

    /// Same-compartment direct calls recorded.
    pub fn direct_calls(&self) -> u64 {
        self.direct_calls
    }

    /// Total crossings for one (mechanism, src, dst) pair.
    pub fn crossings(&self, mechanism: &'static str, src: u16, dst: u16) -> u64 {
        let key = (mechanism, src, dst);
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(0, |(_, p)| p.crossings)
    }

    /// Total crossings summed over all pairs.
    pub fn total_crossings(&self) -> u64 {
        self.pairs.iter().map(|(_, p)| p.crossings).sum()
    }

    /// The crossing-cycle histogram for one mechanism, if any crossing
    /// used it.
    pub fn mechanism_hist(&self, mechanism: &'static str) -> Option<&CycleHist> {
        self.hists
            .iter()
            .find(|(m, _)| *m == mechanism)
            .map(|(_, h)| h)
    }

    /// The batch-size histogram for one mechanism, if it ever issued a
    /// batched crossing.
    pub fn batch_hist(&self, mechanism: &'static str) -> Option<&CycleHist> {
        self.batch_hists
            .iter()
            .find(|(m, _)| *m == mechanism)
            .map(|(_, h)| h)
    }

    /// Per-compartment event rings (index = compartment id; may be
    /// shorter than the compartment count if a compartment saw no event).
    pub fn rings(&self) -> &[EventRing] {
        &self.rings
    }

    /// Clears all counters, histograms and rings (benchmark warm-up).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Telemetry owned by the kernel executor: context switches, run-queue
/// depth samples, per-task run cycles, and a ring of switch events.
#[derive(Debug, Clone, Default)]
pub struct SchedTrace {
    switches: u64,
    steps: u64,
    depth_sum: u64,
    depth_samples: u64,
    depth_max: u64,
    task_cycles: Vec<(u32, u64)>,
    last_task: usize,
    ring: EventRing,
}

impl SchedTrace {
    /// Fresh, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a thread-to-thread context switch to `tid` at `now`.
    #[inline]
    pub fn record_switch(&mut self, now: u64, tid: u32) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.switches += 1;
            self.ring.push(EventKind::CtxSwitch, now, tid as u64);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (now, tid);
        }
    }

    /// Records one executor step of thread `tid` costing `cycles`,
    /// sampling the run queue at `depth` ready threads.
    #[inline]
    pub fn record_step(&mut self, tid: u32, cycles: u64, depth: usize) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.steps += 1;
            self.depth_sum += depth as u64;
            self.depth_samples += 1;
            self.depth_max = self.depth_max.max(depth as u64);
            // Tiny task set; the last-hit cache covers the common case of
            // one runnable thread.
            let i = match self.task_cycles.get(self.last_task) {
                Some((t, _)) if *t == tid => self.last_task,
                _ => match self.task_cycles.iter().position(|(t, _)| *t == tid) {
                    Some(i) => i,
                    None => {
                        self.task_cycles.push((tid, 0));
                        self.task_cycles.len() - 1
                    }
                },
            };
            self.last_task = i;
            self.task_cycles[i].1 += cycles;
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (tid, cycles, depth);
        }
    }

    /// Context switches recorded.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Executor steps recorded.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The switch-event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Aggregates into a [`SchedSnapshot`].
    pub fn snapshot(&self) -> SchedSnapshot {
        SchedSnapshot {
            switches: self.switches,
            steps: self.steps,
            depth_sum: self.depth_sum,
            depth_samples: self.depth_samples,
            depth_max: self.depth_max,
            task_cycles: {
                let mut v = self.task_cycles.clone();
                v.sort_unstable_by_key(|&(t, _)| t);
                v
            },
        }
    }

    /// Clears everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Per-compartment allocator counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocCounters {
    /// Successful allocations.
    pub allocs: u64,
    /// Frees.
    pub frees: u64,
    /// Bytes currently live.
    pub bytes_in_use: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Failed allocation requests.
    pub failures: u64,
}

/// Telemetry owned by the heap service: one [`AllocCounters`] per
/// compartment plus a ring of allocation-failure events.
#[derive(Debug, Clone, Default)]
pub struct AllocTrace {
    per: Vec<AllocCounters>,
    ring: EventRing,
}

impl AllocTrace {
    /// Fresh, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    #[cfg(not(feature = "trace-off"))]
    fn slot(&mut self, cpt: u16) -> &mut AllocCounters {
        let idx = cpt as usize;
        while self.per.len() <= idx {
            self.per.push(AllocCounters::default());
        }
        &mut self.per[idx]
    }

    /// Records a successful allocation of `bytes` for compartment `cpt`.
    #[inline]
    pub fn on_alloc(&mut self, cpt: u16, bytes: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            let s = self.slot(cpt);
            s.allocs += 1;
            s.bytes_in_use += bytes;
            s.peak_bytes = s.peak_bytes.max(s.bytes_in_use);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (cpt, bytes);
        }
    }

    /// Records a free of `bytes` for compartment `cpt`.
    #[inline]
    pub fn on_free(&mut self, cpt: u16, bytes: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            let s = self.slot(cpt);
            s.frees += 1;
            s.bytes_in_use = s.bytes_in_use.saturating_sub(bytes);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (cpt, bytes);
        }
    }

    /// Records a failed allocation of `bytes` for compartment `cpt` at
    /// machine time `now`.
    #[inline]
    pub fn on_fail(&mut self, cpt: u16, bytes: u64, now: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.slot(cpt).failures += 1;
            self.ring.push(EventKind::AllocFail, now, bytes);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (cpt, bytes, now);
        }
    }

    /// Counters for compartment `cpt` (zeroes if never touched).
    pub fn counters(&self, cpt: u16) -> AllocCounters {
        self.per.get(cpt as usize).copied().unwrap_or_default()
    }

    /// All per-compartment counters (index = compartment id).
    pub fn all(&self) -> &[AllocCounters] {
        &self.per
    }

    /// The allocation-failure event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Clears everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Telemetry owned by the machine: fault counts by class and by
/// protection key, plus a ring of fault events.
#[derive(Debug, Clone, Default)]
pub struct FaultTrace {
    by_kind: BTreeMap<&'static str, u64>,
    by_key: BTreeMap<u16, u64>,
    ring: EventRing,
}

impl FaultTrace {
    /// Fresh, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fault of class `kind` at machine time `now`;
    /// `key` is the protection key involved, for pkey violations.
    #[inline]
    pub fn record(&mut self, kind: &'static str, key: Option<u16>, now: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            *self.by_kind.entry(kind).or_default() += 1;
            let detail = match key {
                Some(k) => {
                    *self.by_key.entry(k).or_default() += 1;
                    k as u64
                }
                None => u64::MAX,
            };
            self.ring.push(EventKind::Fault, now, detail);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (kind, key, now);
        }
    }

    /// Records a fault deliberately injected by the chaos layer at
    /// machine time `now`. Counted under `kind` (an `"injected-*"` tag)
    /// like any other class, but the ring event carries the `Injected`
    /// kind so post-hoc analysis can separate injected faults from
    /// enforcement faults.
    #[inline]
    pub fn record_injected(&mut self, kind: &'static str, now: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            *self.by_kind.entry(kind).or_default() += 1;
            self.ring.push(EventKind::Injected, now, u64::MAX);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = (kind, now);
        }
    }

    /// Count for one fault class.
    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Total faults recorded.
    pub fn total(&self) -> u64 {
        self.by_kind.values().sum()
    }

    /// Per-class counts.
    pub fn by_kind(&self) -> &BTreeMap<&'static str, u64> {
        &self.by_kind
    }

    /// Per-protection-key violation counts.
    pub fn by_key(&self) -> &BTreeMap<u16, u64> {
        &self.by_key
    }

    /// The fault-event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Clears everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Telemetry owned by the machine's software TLB (the per-vCPU
/// translation cache in front of the page-table walk): hit, miss and
/// flush counters.
///
/// A *flush* is one machine-level page-table mutation (region map,
/// unmap, retag or seal) that invalidated the cached translations of
/// the affected VM via its generation counter — lazy invalidation, so
/// one flush may expire many cached entries. Like every probe in this
/// crate, all three counters compile to no-ops under `trace-off`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TlbTrace {
    hits: u64,
    misses: u64,
    flushes: u64,
}

impl TlbTrace {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a translation served from the cache.
    #[inline]
    pub fn hit(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.hits += 1;
        }
    }

    /// Counts a lookup that had to fall back to the page-table walk
    /// (including walks that end in a page fault).
    #[inline]
    pub fn miss(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.misses += 1;
        }
    }

    /// Counts one generation-bumping page-table mutation.
    #[inline]
    pub fn flush(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.flushes += 1;
        }
    }

    /// Cache hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Walk fallbacks recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidating mutations recorded.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Adds `other`'s counters into `self` (per-vCPU shard aggregation;
    /// see [`crate::shard`]).
    pub fn merge_counters(&mut self, other: &Self) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.flushes += other.flushes;
    }

    /// The serializable view.
    pub fn snapshot(&self) -> TlbSnapshot {
        TlbSnapshot {
            hits: self.hits,
            misses: self.misses,
            flushes: self.flushes,
        }
    }

    /// Clears everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Telemetry owned by the net stack: packet counters and a ring of
/// drop events.
#[derive(Debug, Clone, Default)]
pub struct NetTrace {
    rx_segments: u64,
    tx_segments: u64,
    rx_datagrams: u64,
    drops: u64,
    backlog_overflows: u64,
    ring: EventRing,
}

impl NetTrace {
    /// Fresh, empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a received TCP segment.
    #[inline]
    pub fn on_rx_segment(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.rx_segments += 1;
        }
    }

    /// Records a transmitted TCP segment.
    #[inline]
    pub fn on_tx_segment(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.tx_segments += 1;
        }
    }

    /// Records a delivered UDP datagram.
    #[inline]
    pub fn on_rx_datagram(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.rx_datagrams += 1;
        }
    }

    /// Records a demux drop at machine time `now`.
    #[inline]
    pub fn on_drop(&mut self, now: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.drops += 1;
            self.ring.push(EventKind::PacketDrop, now, 0);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = now;
        }
    }

    /// Records a SYN dropped because the listener's accept backlog was
    /// at capacity (the connection storm the serving tier must survive).
    #[inline]
    pub fn on_backlog_overflow(&mut self, now: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.backlog_overflows += 1;
            self.ring.push(EventKind::PacketDrop, now, 1);
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = now;
        }
    }

    /// Drops recorded.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Backlog-overflow SYN drops recorded.
    pub fn backlog_overflows(&self) -> u64 {
        self.backlog_overflows
    }

    /// Adds `other`'s packet counters into `self` (per-vCPU shard
    /// aggregation; drop *events* stay in their shard's ring — see
    /// [`crate::shard`]).
    pub fn merge_counters(&mut self, other: &Self) {
        self.rx_segments += other.rx_segments;
        self.tx_segments += other.tx_segments;
        self.rx_datagrams += other.rx_datagrams;
        self.drops += other.drops;
        self.backlog_overflows += other.backlog_overflows;
    }

    /// The drop-event ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Aggregates into a [`NetSnapshot`]; `retransmits` is supplied by
    /// the stack (summed over live TCP connections).
    pub fn snapshot(&self, retransmits: u64) -> NetSnapshot {
        NetSnapshot {
            rx_segments: self.rx_segments,
            tx_segments: self.tx_segments,
            rx_datagrams: self.rx_datagrams,
            drops: self.drops,
            backlog_overflows: self.backlog_overflows,
            retransmits,
        }
    }

    /// Clears everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Telemetry owned by the readiness layer (`EventQueue` in
/// `flexos-net`): event posting, coalescing and delivery counters.
///
/// Host-side bookkeeping only — posting an event charges no simulated
/// cycles, so the counters are purely additive to the baseline figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct EventQueueTrace {
    posted: u64,
    coalesced: u64,
    polls: u64,
    delivered: u64,
}

impl EventQueueTrace {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one readiness event posted (socket newly enqueued).
    #[inline]
    pub fn on_post(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.posted += 1;
        }
    }

    /// Counts an event merged into an already-queued socket entry.
    #[inline]
    pub fn on_coalesce(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.coalesced += 1;
        }
    }

    /// Counts one `poll()` that delivered `n` ready sockets.
    #[inline]
    pub fn on_poll(&mut self, n: u64) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.polls += 1;
            self.delivered += n;
        }
        #[cfg(feature = "trace-off")]
        {
            let _ = n;
        }
    }

    /// Events posted (new queue entries).
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Events coalesced into pending entries.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Polls issued.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Ready sockets delivered across all polls.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Adds `other`'s counters into `self` (per-vCPU shard aggregation).
    pub fn merge_counters(&mut self, other: &Self) {
        self.posted += other.posted;
        self.coalesced += other.coalesced;
        self.polls += other.polls;
        self.delivered += other.delivered;
    }

    /// Clears everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Telemetry owned by the cooperative per-connection executor
/// (`CoExecutor` in `flexos-kernel`): task spawn/run/wake/steal
/// counters. Same additive, host-side-only contract as
/// [`EventQueueTrace`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecutorTrace {
    spawned: u64,
    tasks_run: u64,
    wakeups: u64,
    steals: u64,
}

impl ExecutorTrace {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a task spawned.
    #[inline]
    pub fn on_spawn(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.spawned += 1;
        }
    }

    /// Counts one task step run.
    #[inline]
    pub fn on_run(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.tasks_run += 1;
        }
    }

    /// Counts a wakeup (task moved from waiting to the run queue).
    #[inline]
    pub fn on_wake(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.wakeups += 1;
        }
    }

    /// Counts a task stolen across shards in free-running mode.
    #[inline]
    pub fn on_steal(&mut self) {
        #[cfg(not(feature = "trace-off"))]
        {
            self.steals += 1;
        }
    }

    /// Tasks spawned.
    pub fn spawned(&self) -> u64 {
        self.spawned
    }

    /// Task steps run.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run
    }

    /// Wakeups delivered.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Cross-shard steals.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Adds `other`'s counters into `self` (per-vCPU shard aggregation).
    pub fn merge_counters(&mut self, other: &Self) {
        self.spawned += other.spawned;
        self.tasks_run += other.tasks_run;
        self.wakeups += other.wakeups;
        self.steals += other.steals;
    }

    /// Clears everything.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Aggregates live trace structs into one [`StatsSnapshot`].
///
/// The caller registers each subsystem's trace (with whatever naming
/// context it has — compartment names, key ownership) and then calls
/// [`TraceRegistry::finish`], which sorts rows, merges every event ring
/// into one time-ordered tail, and returns the snapshot.
#[derive(Debug, Default)]
pub struct TraceRegistry {
    snap: StatsSnapshot,
    events: Vec<EventRow>,
}

impl TraceRegistry {
    /// A fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the measured window length in cycles.
    pub fn set_elapsed(&mut self, cycles: u64) {
        self.snap.elapsed_cycles = cycles;
    }

    fn name_of(names: &[String], cpt: u16) -> String {
        names
            .get(cpt as usize)
            .cloned()
            .unwrap_or_else(|| format!("compartment{cpt}"))
    }

    fn merge_ring(&mut self, subsystem: &'static str, cpt: u16, ring: &EventRing) {
        self.snap.events_overwritten += ring.overwritten();
        self.note_ring(subsystem, cpt, ring.pushed(), ring.overwritten());
        for e in ring.iter() {
            self.events.push(EventRow {
                seq: e.seq,
                cycles: e.cycles,
                compartment: cpt,
                kind: e.kind.label(),
                detail: e.detail,
            });
        }
    }

    /// Records one ring's push/drop accounting for the `--stats`
    /// dropped-events report. Rings that never recorded are skipped so
    /// the table stays workload-shaped.
    fn note_ring(&mut self, subsystem: &'static str, owner: u16, pushed: u64, dropped: u64) {
        if pushed == 0 {
            return;
        }
        self.snap.ring_drops.push(RingDropRow {
            subsystem,
            owner,
            pushed,
            dropped,
        });
    }

    /// Registers the gate runtime's trace. `names[i]` names compartment `i`.
    pub fn add_gates(&mut self, gt: &GateTrace, names: &[String]) {
        self.snap.direct_calls += gt.direct_calls();
        for &((mech, src, dst), ref p) in gt.pairs.iter() {
            self.snap.gate_pairs.push(GatePairRow {
                mechanism: mech,
                src,
                dst,
                src_name: Self::name_of(names, src),
                dst_name: Self::name_of(names, dst),
                crossings: p.crossings,
                bytes: p.bytes,
                gate_cycles: p.gate_cycles,
            });
        }
        for &(mech, ref h) in gt.hists.iter() {
            let (p50, p90, p99) = h.quantiles();
            self.snap.mechanisms.push(MechanismRow {
                mechanism: mech,
                count: h.count(),
                p50,
                p90,
                p99,
                mean: h.mean(),
                max: h.max(),
            });
        }
        for &(mech, ref h) in gt.batch_hists.iter() {
            self.snap.gate_batch.push(GateBatchRow {
                mechanism: mech,
                batches: h.count(),
                calls: h.sum(),
                p50: h.percentile(0.50),
                max: h.max(),
            });
        }
        for (i, ring) in gt.rings().iter().enumerate() {
            self.merge_ring("gates", i as u16, ring);
        }
    }

    /// Registers the executor's trace; switch events are attributed to
    /// compartment `sched_cpt` (the compartment the scheduler lives in).
    pub fn add_sched(&mut self, st: &SchedTrace, sched_cpt: u16) {
        self.snap.sched = st.snapshot();
        self.merge_ring("sched", sched_cpt, st.ring());
    }

    /// Registers the heap service's trace. `names[i]` names compartment `i`.
    pub fn add_allocs(&mut self, at: &AllocTrace, names: &[String]) {
        for (i, c) in at.all().iter().enumerate() {
            if c.allocs == 0 && c.frees == 0 && c.failures == 0 {
                continue;
            }
            self.snap.allocs.push(AllocRow {
                compartment: i as u16,
                name: Self::name_of(names, i as u16),
                allocs: c.allocs,
                frees: c.frees,
                bytes_in_use: c.bytes_in_use,
                peak_bytes: c.peak_bytes,
                failures: c.failures,
            });
        }
        // Failure events carry no compartment in the ring; attribute to 0.
        self.merge_ring("allocs", 0, at.ring());
    }

    /// Registers the machine's fault trace. `key_owner` maps a protection
    /// key to the (compartment id, name) owning it, if any.
    pub fn add_faults(
        &mut self,
        ft: &FaultTrace,
        key_owner: impl Fn(u16) -> Option<(u16, String)>,
    ) {
        for (&kind, &count) in ft.by_kind().iter() {
            self.snap.fault_kinds.push(FaultKindRow { kind, count });
        }
        let mut per_cpt: BTreeMap<u16, (String, u64)> = BTreeMap::new();
        for (&key, &count) in ft.by_key().iter() {
            if let Some((cpt, name)) = key_owner(key) {
                let e = per_cpt.entry(cpt).or_insert((name, 0));
                e.1 += count;
            }
        }
        for (cpt, (name, count)) in per_cpt {
            self.snap.fault_compartments.push(FaultCompartmentRow {
                compartment: cpt,
                name,
                count,
            });
        }
        // Fault events are attributed to the owning compartment when the
        // key maps to one, else to compartment 0.
        self.snap.events_overwritten += ft.ring().overwritten();
        self.note_ring("faults", 0, ft.ring().pushed(), ft.ring().overwritten());
        for e in ft.ring().iter() {
            let cpt = if e.detail == u64::MAX {
                0
            } else {
                key_owner(e.detail as u16).map_or(0, |(c, _)| c)
            };
            self.events.push(EventRow {
                seq: e.seq,
                cycles: e.cycles,
                compartment: cpt,
                kind: e.kind.label(),
                detail: e.detail,
            });
        }
    }

    /// Registers the machine's software-TLB counters.
    pub fn add_tlb(&mut self, tt: &TlbTrace) {
        self.snap.tlb = tt.snapshot();
    }

    /// Registers the gate runtime's async-ring counters. The caller
    /// converts from its own stats type — this crate sits below the
    /// gate layer in the dependency graph.
    pub fn add_async_gates(&mut self, a: AsyncGatesSnapshot) {
        self.snap.async_gates = a;
    }

    /// Registers the gate runtime's live-migration counters. Same
    /// layering as [`TraceRegistry::add_async_gates`]: the caller
    /// converts from the gate layer's stats type.
    pub fn add_migrations(&mut self, mg: MigrationsSnapshot) {
        self.snap.migrations = mg;
    }

    /// Registers the net stack's trace, attributed to compartment
    /// `net_cpt`. `retransmits` is summed over the stack's connections.
    pub fn add_net(&mut self, nt: &NetTrace, retransmits: u64, net_cpt: u16) {
        self.snap.net = nt.snapshot(retransmits);
        self.merge_ring("net", net_cpt, nt.ring());
    }

    /// Registers the serving tier's counters: the readiness layer's
    /// [`EventQueueTrace`] plus the cooperative executor's
    /// [`ExecutorTrace`] (pre-aggregated across vCPU shards by the
    /// caller — see [`crate::shard`]).
    pub fn add_serving(&mut self, eq: &EventQueueTrace, ex: &ExecutorTrace) {
        self.snap.serving = ServingSnapshot {
            events_posted: eq.posted(),
            events_coalesced: eq.coalesced(),
            polls: eq.polls(),
            events_delivered: eq.delivered(),
            tasks_spawned: ex.spawned(),
            tasks_run: ex.tasks_run(),
            wakeups: ex.wakeups(),
            steals: ex.steals(),
        };
    }

    /// Registers the machine's request-span tracer: exact per-
    /// `(app, backend)` latency percentiles plus per-shard ring
    /// accounting. Span events stay in their own shard rings (they are
    /// exported via the Chrome trace, not the snapshot event tail).
    pub fn add_spans(&mut self, sp: &SpanTrace) {
        for row in sp.latency_rows() {
            self.snap.latency.push(LatencyRow {
                app: row.app,
                backend: row.backend,
                count: row.count,
                p50: row.p50,
                p99: row.p99,
                p999: row.p999,
            });
        }
        for s in sp.ring_stats() {
            self.note_ring("spans", s.shard as u16, s.pushed, s.dropped);
        }
    }

    /// Sorts rows (busiest first), merges the collected events into one
    /// time-ordered tail of at most [`SNAPSHOT_EVENT_CAP`] entries, and
    /// returns the snapshot.
    pub fn finish(mut self) -> StatsSnapshot {
        self.snap
            .gate_pairs
            .sort_by_key(|r| std::cmp::Reverse(r.crossings));
        self.snap
            .mechanisms
            .sort_by_key(|r| std::cmp::Reverse(r.count));
        self.snap
            .gate_batch
            .sort_by_key(|r| std::cmp::Reverse(r.batches));
        self.snap.latency.sort_by_key(|r| (r.app, r.backend));
        self.snap.ring_drops.sort_by_key(|r| (r.subsystem, r.owner));
        self.events.sort_by_key(|e| e.cycles);
        if self.events.len() > SNAPSHOT_EVENT_CAP {
            let drop = self.events.len() - SNAPSHOT_EVENT_CAP;
            self.events.drain(..drop);
        }
        self.snap.events = self.events;
        self.snap
    }
}

#[cfg(all(test, not(feature = "trace-off")))]
mod tests {
    use super::*;

    #[test]
    fn gate_trace_accumulates_pairs_and_hists() {
        let mut gt = GateTrace::new();
        gt.record_direct();
        gt.record_crossing("MPK (shared stack)", 0, 1, 180, 64, 1000);
        gt.record_crossing("MPK (shared stack)", 0, 1, 200, 64, 2000);
        gt.record_crossing("VM RPC (EPT)", 1, 2, 7000, 0, 3000);
        assert_eq!(gt.direct_calls(), 1);
        assert_eq!(gt.crossings("MPK (shared stack)", 0, 1), 2);
        assert_eq!(gt.crossings("VM RPC (EPT)", 1, 2), 1);
        assert_eq!(gt.total_crossings(), 3);
        let h = gt.mechanism_hist("MPK (shared stack)").unwrap();
        assert_eq!(h.count(), 2);
        // Compartment 1 saw one enter (from 0) and one exit (to 2)… plus
        // the second 0→1 enter.
        assert_eq!(gt.rings()[1].len(), 3);
    }

    #[test]
    fn registry_builds_sorted_snapshot() {
        let mut gt = GateTrace::new();
        gt.record_crossing("a", 0, 1, 10, 0, 10);
        gt.record_crossing("b", 1, 0, 20, 0, 20);
        gt.record_crossing("b", 1, 0, 30, 0, 30);
        let mut st = SchedTrace::new();
        st.record_switch(40, 7);
        st.record_step(7, 100, 2);
        let mut at = AllocTrace::new();
        at.on_alloc(1, 256);
        at.on_fail(1, 1 << 40, 50);
        let mut ft = FaultTrace::new();
        ft.record("pkey-violation", Some(2), 60);
        let mut nt = NetTrace::new();
        nt.on_drop(70);

        let names = vec!["rest".to_string(), "net".to_string()];
        let mut reg = TraceRegistry::new();
        reg.set_elapsed(1000);
        reg.add_gates(&gt, &names);
        reg.add_sched(&st, 0);
        reg.add_allocs(&at, &names);
        reg.add_faults(&ft, |k| (k == 2).then(|| (1, "net".to_string())));
        reg.add_net(&nt, 3, 1);
        let snap = reg.finish();

        assert_eq!(snap.gate_pairs[0].crossings, 2); // busiest first
        assert_eq!(snap.gate_pairs[0].src_name, "net");
        assert_eq!(snap.sched.switches, 1);
        assert_eq!(snap.allocs[0].failures, 1);
        assert_eq!(snap.fault_kinds[0].kind, "pkey-violation");
        assert_eq!(snap.fault_compartments[0].compartment, 1);
        assert_eq!(snap.net.drops, 1);
        assert_eq!(snap.net.retransmits, 3);
        // Events are time-ordered.
        let times: Vec<u64> = snap.events.iter().map(|e| e.cycles).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(!snap.to_json().is_empty());
    }
}
