//! Plan instantiation: from an [`ImagePlan`] to a booted [`BootImage`].
//!
//! This is the runtime half of FlexOS's builder: "Using this information,
//! FlexOS's builder will generate the required protection domains (one
//! per compartment) and replace the call gate placeholders with the
//! relevant code." (paper §2). Given a validated plan, [`instantiate`]
//! boots a simulated machine, creates one protection domain per
//! compartment under the chosen backend (MPK keys in one VM, or one VM
//! per compartment), wires the per-compartment or global heap
//! allocators, maps the shared window, and installs the backend's gate
//! into a [`GateRuntime`].

use crate::mpk::{MpkSharedGate, MpkSwitchedGate};
use crate::vmrpc::VmRpcGate;
use flexos::build::{BackendChoice, ImagePlan, LibRole};
use flexos::gate::{
    CallVec, CompartmentCtx, CompartmentId, Cqe, DirectGate, Gate, GateRuntime, Sqe,
};
use flexos_kernel::alloc::{Allocator, FreeListAllocator, HeapService};
use flexos_machine::{
    Addr, Fault, Machine, MachineConfig, PageFlags, Pkru, ProtKey, Result, VcpuId, VmId,
};
use std::sync::Arc;

/// Sizing knobs for instantiation.
#[derive(Debug, Clone)]
pub struct BootOptions {
    /// Physical frames for the whole machine (default 64 MiB).
    pub phys_frames: u64,
    /// Private heap bytes per compartment (default 2 MiB).
    pub heap_per_compartment: u64,
    /// Shared-window heap bytes (default 1 MiB).
    pub shared_heap: u64,
    /// Per-thread stack bytes (default 64 KiB).
    pub stack_size: u64,
    /// Socket-ring pool bytes the OS assembly layer carves out of the
    /// network compartment's heap (default 1 MiB). Serving-tier boots
    /// with 10⁵ connections raise this so `conns × ring_bytes` fits.
    pub net_pool_bytes: u64,
}

impl Default for BootOptions {
    fn default() -> Self {
        Self {
            phys_frames: 16384,
            heap_per_compartment: 2 * 1024 * 1024,
            shared_heap: 1024 * 1024,
            stack_size: 64 * 1024,
            net_pool_bytes: 1024 * 1024,
        }
    }
}

/// A booted FlexOS image: machine + compartments + gates + heaps.
///
/// This is the substrate the kernel services, network stack and
/// applications run on. All of its memory operations execute as the
/// *current* compartment (per the gate runtime), so protection is
/// enforced end to end.
#[derive(Debug)]
pub struct BootImage {
    /// The simulated machine.
    pub machine: Machine,
    /// The gate dispatcher.
    pub gates: GateRuntime,
    /// The malloc service (global or per-compartment).
    pub heaps: HeapService,
    /// The plan this image was built from.
    pub plan: ImagePlan,
    /// Allocator over the shared window (the `[Requires] Shared` region;
    /// programmers "annotate data shared with other micro-libs so that
    /// they are allocated in shared areas").
    shared_alloc: FreeListAllocator,
    stack_size: u64,
    /// Base of the VM-RPC inbox area, when one was reserved at boot.
    /// Migratable images always reserve it (so a later swap to the
    /// VM-RPC backend needs no layout change); others get it lazily via
    /// [`crate::migrate::ensure_rpc_base`].
    pub(crate) rpc_base: Option<Addr>,
}

impl BootImage {
    /// The shared window as `(base, len)`.
    pub fn shared_region(&self) -> (Addr, u64) {
        self.shared_alloc.region()
    }
}

impl BootImage {
    /// The compartment a library was placed in, by library name.
    pub fn compartment_of_lib(&self, name: &str) -> Option<CompartmentId> {
        let idx = self
            .plan
            .config
            .libraries
            .iter()
            .position(|l| l.spec.name == name)?;
        Some(CompartmentId(self.plan.compartment_of[idx] as u16))
    }

    /// The compartment hosting the first library with `role`.
    pub fn compartment_of_role(&self, role: LibRole) -> Option<CompartmentId> {
        self.plan
            .compartment_of_role(role)
            .map(|c| CompartmentId(c as u16))
    }

    /// Allocates from the *current* compartment's heap.
    pub fn malloc(&mut self, size: u64, align: u64) -> Result<Addr> {
        let c = self.gates.current();
        self.heaps.alloc(&mut self.machine, c, size, align)
    }

    /// Frees into the *current* compartment's heap.
    pub fn free(&mut self, addr: Addr) -> Result<()> {
        let c = self.gates.current();
        self.heaps.free(&mut self.machine, c, addr)
    }

    /// Allocates shared data visible to every compartment.
    pub fn malloc_shared(&mut self, size: u64, align: u64) -> Result<Addr> {
        self.shared_alloc.alloc(&mut self.machine, size, align)
    }

    /// Frees shared data.
    pub fn free_shared(&mut self, addr: Addr) -> Result<()> {
        self.shared_alloc.free(&mut self.machine, addr)
    }

    /// Writes as the current compartment.
    pub fn write(&mut self, addr: Addr, data: &[u8]) -> Result<()> {
        let vcpu = self.gates.current_ctx().vcpu;
        self.machine.write(vcpu, addr, data)
    }

    /// Reads as the current compartment.
    pub fn read(&mut self, addr: Addr, buf: &mut [u8]) -> Result<()> {
        let vcpu = self.gates.current_ctx().vcpu;
        self.machine.read(vcpu, addr, buf)
    }

    /// Copies within simulated memory as the current compartment.
    pub fn copy(&mut self, dst: Addr, src: Addr, len: u64) -> Result<()> {
        let vcpu = self.gates.current_ctx().vcpu;
        self.machine.copy(vcpu, dst, src, len)
    }

    /// Allocates a thread stack for `compartment`, honoring the backend's
    /// stack policy: shared-stack gates place stacks in the domain shared
    /// by all compartments; switched-stack and VM gates keep them private.
    pub fn alloc_stack(&mut self, compartment: CompartmentId) -> Result<(Addr, u64)> {
        let mech = self.plan.config.backend.mechanism();
        let size = self.stack_size;
        if mech.stacks_shared() {
            let base = self.machine.alloc_shared_region(size, ProtKey(0))?;
            Ok((base, size))
        } else {
            let ctx = self.gates.ctx(compartment).clone();
            let key = ctx.keys.first().copied().unwrap_or(ProtKey(0));
            let base = self
                .machine
                .alloc_region(ctx.vm, size, key, PageFlags::RW)?;
            Ok((base, size))
        }
    }

    /// Crosses into the compartment hosting `lib` and runs `f` there —
    /// the runtime analogue of the `uk_gate_r(...)` placeholder.
    pub fn call_lib<R>(
        &mut self,
        lib: &str,
        arg_bytes: u64,
        ret_bytes: u64,
        f: impl FnOnce(&mut Machine, &mut GateRuntime) -> Result<R>,
    ) -> Result<R> {
        let target = self
            .compartment_of_lib(lib)
            .ok_or_else(|| Fault::HardeningAbort {
                mechanism: "gate",
                reason: format!("unknown library `{lib}`"),
            })?;
        self.gates
            .cross(&mut self.machine, target, arg_bytes, ret_bytes, f)
    }

    /// Batched [`BootImage::call_lib`]: resolves `lib` to its compartment
    /// once (hoisting the per-call linear name search) and issues
    /// `calls.len()` crossings through [`GateRuntime::cross_batch`]; call
    /// `idx` runs `f(m, rt, idx)` inside the target compartment.
    pub fn call_lib_batch<R>(
        &mut self,
        lib: &str,
        calls: &CallVec,
        f: impl FnMut(&mut Machine, &mut GateRuntime, usize) -> Result<R>,
    ) -> Result<Vec<R>> {
        let target = self
            .compartment_of_lib(lib)
            .ok_or_else(|| Fault::HardeningAbort {
                mechanism: "gate",
                reason: format!("unknown library `{lib}`"),
            })?;
        self.gates.cross_batch(&mut self.machine, target, calls, f)
    }

    fn lib_target(&self, lib: &str) -> Result<CompartmentId> {
        self.compartment_of_lib(lib)
            .ok_or_else(|| Fault::HardeningAbort {
                mechanism: "gate",
                reason: format!("unknown library `{lib}`"),
            })
    }

    /// Queues one async gate-call descriptor against the compartment
    /// hosting `lib` — the submission half of [`BootImage::call_lib_async`].
    /// Host-side bookkeeping only; nothing simulated happens until a flush.
    pub fn submit_lib(&mut self, lib: &str, sqe: Sqe) -> Result<()> {
        let target = self.lib_target(lib)?;
        self.gates.submit(target, sqe)
    }

    /// Flushes the submission ring against the compartment hosting `lib`,
    /// running `f` inside it once per queued descriptor. Async analogue of
    /// [`BootImage::call_lib_batch`]; completions land on the ring for
    /// [`BootImage::reap_lib`] / [`GateRuntime::poll_completions`].
    pub fn call_lib_async(
        &mut self,
        lib: &str,
        f: impl FnMut(&mut Machine, &mut GateRuntime, &Sqe) -> Result<i64>,
    ) -> Result<usize> {
        let target = self.lib_target(lib)?;
        self.gates.flush_async(&mut self.machine, target, f)
    }

    /// Pops the oldest completion from `lib`'s ring ([`Fault::RingEmpty`]
    /// when none is ready).
    pub fn reap_lib(&mut self, lib: &str) -> Result<Cqe> {
        let target = self.lib_target(lib)?;
        self.gates.reap(target)
    }
}

/// Boots `plan` with default sizing.
pub fn instantiate(plan: ImagePlan) -> Result<BootImage> {
    instantiate_with(plan, BootOptions::default())
}

/// Boots `plan` with explicit sizing.
pub fn instantiate_with(plan: ImagePlan, opts: BootOptions) -> Result<BootImage> {
    let mut machine = Machine::new(MachineConfig {
        phys_frames: opts.phys_frames,
        ..MachineConfig::default()
    });
    let n = plan.num_compartments;
    let backend = plan.config.backend;

    // --- protection domains -------------------------------------------------
    let mut vms = vec![VmId(0); n];
    let mut vcpus = vec![VcpuId(0); n];
    let mut keys: Vec<Vec<ProtKey>> = vec![Vec::new(); n];
    let mut pkrus = vec![Pkru::ALLOW_ALL; n];
    match backend {
        BackendChoice::None => {}
        BackendChoice::MpkShared | BackendChoice::MpkSwitched | BackendChoice::Cheri => {
            // The CHERI backend reuses the per-page tags to model each
            // compartment's capability reach: the PKRU-visible set of a
            // compartment equals the memory its capabilities span.
            for c in 0..n {
                let key = ProtKey::new((c + 1) as u8).ok_or(Fault::HardeningAbort {
                    mechanism: "mpk",
                    reason: "compartment count exceeds the MPK key budget".into(),
                })?;
                keys[c] = vec![key];
                pkrus[c] = Pkru::deny_all_except(&[ProtKey(0), key], &[]);
            }
        }
        BackendChoice::VmRpc => {
            for c in 1..n {
                let vm = machine.add_vm(false);
                vms[c] = vm;
                vcpus[c] = machine.add_vcpu(vm);
            }
        }
    }

    // --- memory: shared window + per-compartment heaps ----------------------
    let rpc_area = if backend == BackendChoice::VmRpc {
        VmRpcGate::area_bytes(n as u16)
    } else {
        0
    };
    let shared_base = machine.alloc_shared_region(opts.shared_heap + rpc_area, ProtKey(0))?;
    let rpc_base = Addr(shared_base.0 + opts.shared_heap);
    let shared_alloc = FreeListAllocator::new(shared_base, opts.shared_heap);

    // Isolating backends with >1 compartment require split heaps (the MPK
    // backend isolates each compartment's heap; the VM backend cannot even
    // express a cross-VM heap).
    let dedicated = plan.config.dedicated_allocators || (backend.isolates() && n > 1);
    let mut compartments = Vec::with_capacity(n);
    let mut allocators: Vec<Box<dyn Allocator>> = Vec::new();
    if dedicated {
        for c in 0..n {
            let key = keys[c].first().copied().unwrap_or(ProtKey(0));
            let base =
                machine.alloc_region(vms[c], opts.heap_per_compartment, key, PageFlags::RW)?;
            allocators.push(Box::new(FreeListAllocator::new(
                base,
                opts.heap_per_compartment,
            )));
        }
    } else {
        let base = machine.alloc_region(
            VmId(0),
            opts.heap_per_compartment,
            ProtKey(0),
            PageFlags::RW,
        )?;
        allocators.push(Box::new(FreeListAllocator::new(
            base,
            opts.heap_per_compartment,
        )));
    }

    for c in 0..n {
        let (heap_base, heap_size) = if dedicated {
            allocators[c].region()
        } else {
            allocators[0].region()
        };
        compartments.push(CompartmentCtx {
            id: CompartmentId(c as u16),
            name: plan.compartment_names[c].clone(),
            vm: vms[c],
            vcpu: vcpus[c],
            pkru: pkrus[c],
            keys: keys[c].clone(),
            sh: plan.compartment_sh[c].clone(),
            heap_base,
            heap_size,
        });
    }
    let heaps = if dedicated {
        HeapService::per_compartment(allocators)
    } else {
        HeapService::global(allocators.remove(0))
    };

    // --- gates ---------------------------------------------------------------
    let token = machine.gate_token();
    let gate: Arc<dyn Gate> = match backend {
        BackendChoice::None => Arc::new(DirectGate),
        BackendChoice::MpkShared => Arc::new(MpkSharedGate::new(token)),
        BackendChoice::MpkSwitched => Arc::new(MpkSwitchedGate::new(token)),
        BackendChoice::VmRpc => Arc::new(VmRpcGate::new(rpc_base, n as u16)),
        BackendChoice::Cheri => Arc::new(crate::cheri::CheriGate::new(token)),
    };
    let initial = plan
        .compartment_of_role(LibRole::App)
        .map(|c| CompartmentId(c as u16))
        .unwrap_or(CompartmentId(0));
    let mut gates = GateRuntime::new(compartments, gate, initial);

    // Load the initial compartment's protection view.
    gates.resume_in(&mut machine, initial)?;

    Ok(BootImage {
        machine,
        gates,
        heaps,
        plan,
        shared_alloc,
        stack_size: opts.stack_size,
        rpc_base: (backend == BackendChoice::VmRpc).then_some(rpc_base),
    })
}

/// Boots `plan` on the *migratable superset topology* with default
/// sizing — see [`instantiate_migratable_with`].
pub fn instantiate_migratable(plan: ImagePlan, from: BackendChoice) -> Result<BootImage> {
    instantiate_migratable_with(plan, from, BootOptions::default())
}

/// Boots `plan` so that any compartment pair can later swap its gate
/// backend live (ptr ↔ MPK ↔ CHERI ↔ VM-RPC) via the quiescence
/// protocol, starting from `from`.
///
/// Unlike [`instantiate_with`] — which carves protection domains for
/// exactly one backend — this boot reserves the superset every backend
/// needs, laid out **identically regardless of `from`**:
///
/// * every compartment lives in VM 0 on vCPU 0 (the VM-RPC gate's inbox
///   protocol works intra-VM: self-notifications are permitted);
/// * every compartment always owns a protection key, and every heap is
///   a dedicated allocator region so an MPK-family backend can be
///   retagged in without moving memory;
/// * the VM-RPC inbox area is always reserved next to the shared window.
///
/// Only the page *tags* and PKRU views differ by `from`, and those are
/// exactly what [`crate::migrate`]'s re-establishment step rewrites at
/// swap time (through the generation-counter TLB invalidation). This is
/// what makes the migrate-differential suite's 5×5 claim meaningful:
/// two migratable images differing only in `from` allocate byte-for-byte
/// identical layouts.
///
/// `plan` should be colored with an *isolating* backend (a
/// `BackendChoice::None` plan merges everything into one compartment,
/// leaving nothing to migrate); the stored plan's backend is overridden
/// to `from`.
pub fn instantiate_migratable_with(
    mut plan: ImagePlan,
    from: BackendChoice,
    opts: BootOptions,
) -> Result<BootImage> {
    let mut machine = Machine::new(MachineConfig {
        phys_frames: opts.phys_frames,
        ..MachineConfig::default()
    });
    let n = plan.num_compartments;
    let from_mpk = matches!(
        from,
        BackendChoice::MpkShared | BackendChoice::MpkSwitched | BackendChoice::Cheri
    );

    // Protection domains: single VM, per-compartment keys, PKRU views
    // only as strict as the boot backend requires.
    let mut keys: Vec<Vec<ProtKey>> = vec![Vec::new(); n];
    let mut pkrus = vec![Pkru::ALLOW_ALL; n];
    for (c, slot) in keys.iter_mut().enumerate() {
        let key = ProtKey::new((c + 1) as u8).ok_or(Fault::HardeningAbort {
            mechanism: "mpk",
            reason: "compartment count exceeds the MPK key budget".into(),
        })?;
        *slot = vec![key];
        if from_mpk {
            pkrus[c] = Pkru::deny_all_except(&[ProtKey(0), key], &[]);
        }
    }

    // Memory: shared window + VM-RPC inbox area (always), dedicated
    // per-compartment heaps (always), tags per the boot backend.
    let rpc_area = VmRpcGate::area_bytes(n as u16);
    let shared_base = machine.alloc_shared_region(opts.shared_heap + rpc_area, ProtKey(0))?;
    let rpc_base = Addr(shared_base.0 + opts.shared_heap);
    let shared_alloc = FreeListAllocator::new(shared_base, opts.shared_heap);

    let mut compartments = Vec::with_capacity(n);
    let mut allocators: Vec<Box<dyn Allocator>> = Vec::new();
    for ckeys in keys.iter().take(n) {
        let tag = if from_mpk { ckeys[0] } else { ProtKey(0) };
        let base = machine.alloc_region(VmId(0), opts.heap_per_compartment, tag, PageFlags::RW)?;
        allocators.push(Box::new(FreeListAllocator::new(
            base,
            opts.heap_per_compartment,
        )));
    }
    for c in 0..n {
        let (heap_base, heap_size) = allocators[c].region();
        compartments.push(CompartmentCtx {
            id: CompartmentId(c as u16),
            name: plan.compartment_names[c].clone(),
            vm: VmId(0),
            vcpu: VcpuId(0),
            pkru: pkrus[c],
            keys: keys[c].clone(),
            sh: plan.compartment_sh[c].clone(),
            heap_base,
            heap_size,
        });
    }
    let heaps = HeapService::per_compartment(allocators);

    let token = machine.gate_token();
    let gate: Arc<dyn Gate> = match from {
        BackendChoice::None => Arc::new(DirectGate),
        BackendChoice::MpkShared => Arc::new(MpkSharedGate::new(token)),
        BackendChoice::MpkSwitched => Arc::new(MpkSwitchedGate::new(token)),
        BackendChoice::VmRpc => Arc::new(VmRpcGate::new(rpc_base, n as u16)),
        BackendChoice::Cheri => Arc::new(crate::cheri::CheriGate::new(token)),
    };
    plan.config.backend = from;
    let initial = plan
        .compartment_of_role(LibRole::App)
        .map(|c| CompartmentId(c as u16))
        .unwrap_or(CompartmentId(0));
    let mut gates = GateRuntime::new(compartments, gate, initial);
    gates.resume_in(&mut machine, initial)?;

    Ok(BootImage {
        machine,
        gates,
        heaps,
        plan,
        shared_alloc,
        stack_size: opts.stack_size,
        rpc_base: Some(rpc_base),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos::build::{plan, ImageConfig, LibraryConfig};
    use flexos::spec::LibSpec;

    fn three_lib_plan(backend: BackendChoice) -> ImagePlan {
        let cfg = ImageConfig::new("test", backend)
            .with_library(LibraryConfig::new(
                LibSpec::verified_scheduler(),
                LibRole::Scheduler,
            ))
            .with_library(LibraryConfig::new(
                LibSpec::unsafe_c("netstack"),
                LibRole::NetStack,
            ))
            .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
        plan(cfg).unwrap()
    }

    #[test]
    fn baseline_boots_single_compartment() {
        let img = instantiate(three_lib_plan(BackendChoice::None)).unwrap();
        assert_eq!(img.gates.len(), 1);
        assert_eq!(img.compartment_of_lib("netstack"), Some(CompartmentId(0)));
    }

    #[test]
    fn mpk_boot_separates_heaps_by_key() {
        let mut img = instantiate(three_lib_plan(BackendChoice::MpkShared)).unwrap();
        assert!(img.gates.len() >= 2);
        // Current compartment (app's) heap works.
        let a = img.malloc(64, 8).unwrap();
        img.write(a, b"ok").unwrap();
        // The scheduler compartment's heap is unreachable from here.
        let sched_c = img.compartment_of_role(LibRole::Scheduler).unwrap();
        assert_ne!(sched_c, img.gates.current());
        let sched_heap = img.gates.ctx(sched_c).heap_base;
        assert!(img.write(sched_heap, b"attack").is_err());
        // …but reachable after crossing the gate.
        img.call_lib("uksched_verified", 8, 8, |m, rt| {
            let vcpu = rt.current_ctx().vcpu;
            m.write(vcpu, sched_heap, b"legit")
        })
        .unwrap();
    }

    #[test]
    fn vm_backend_gives_each_compartment_its_own_vm() {
        let img = instantiate(three_lib_plan(BackendChoice::VmRpc)).unwrap();
        let n = img.gates.len();
        assert!(n >= 2);
        let mut vms: Vec<_> = (0..n)
            .map(|c| img.gates.ctx(CompartmentId(c as u16)).vm)
            .collect();
        vms.dedup();
        assert_eq!(vms.len(), n, "each compartment runs in its own VM");
        assert_eq!(img.machine.vm_count(), n);
    }

    #[test]
    fn shared_heap_is_visible_across_compartments() {
        let mut img = instantiate(three_lib_plan(BackendChoice::VmRpc)).unwrap();
        let s = img.malloc_shared(128, 8).unwrap();
        img.write(s, b"shared-data").unwrap();
        let sched_c = img.compartment_of_role(LibRole::Scheduler).unwrap();
        let got = img
            .gates
            .cross(&mut img.machine, sched_c, 0, 0, |m, rt| {
                let vcpu = rt.current_ctx().vcpu;
                let mut buf = [0u8; 11];
                m.read(vcpu, s, &mut buf)?;
                Ok(buf)
            })
            .unwrap();
        assert_eq!(&got, b"shared-data");
    }

    #[test]
    fn crossing_charges_backend_costs() {
        for (backend, min_cost) in [
            (BackendChoice::MpkShared, 2 * CostTableProbe::shared()),
            (BackendChoice::VmRpc, 2 * CostTableProbe::notify()),
        ] {
            let mut img = instantiate(three_lib_plan(backend)).unwrap();
            let sched_c = img.compartment_of_role(LibRole::Scheduler).unwrap();
            let t0 = img.machine.clock().cycles();
            img.gates
                .cross(&mut img.machine, sched_c, 16, 8, |_, _| Ok(()))
                .unwrap();
            let spent = img.machine.clock().cycles() - t0;
            assert!(spent >= min_cost, "{backend:?}: {spent} < {min_cost}");
        }
    }

    struct CostTableProbe;
    impl CostTableProbe {
        fn shared() -> u64 {
            flexos_machine::CostTable::default().mpk_shared_gate()
        }
        fn notify() -> u64 {
            flexos_machine::CostTable::default().vm_notify
        }
    }

    #[test]
    fn stacks_follow_the_gate_policy() {
        // Shared-stack: stack readable from every compartment.
        let mut img = instantiate(three_lib_plan(BackendChoice::MpkShared)).unwrap();
        let c0 = img.gates.current();
        let (stack, _) = img.alloc_stack(c0).unwrap();
        img.write(stack, b"frame").unwrap();
        let sched_c = img.compartment_of_role(LibRole::Scheduler).unwrap();
        img.gates
            .cross(&mut img.machine, sched_c, 0, 0, |m, rt| {
                let mut b = [0u8; 5];
                m.read(rt.current_ctx().vcpu, stack, &mut b)
            })
            .unwrap();

        // Switched-stack: per-compartment stacks are private.
        let mut img = instantiate(three_lib_plan(BackendChoice::MpkSwitched)).unwrap();
        let c0 = img.gates.current();
        let (stack, _) = img.alloc_stack(c0).unwrap();
        img.write(stack, b"frame").unwrap();
        let sched_c = img.compartment_of_role(LibRole::Scheduler).unwrap();
        let err = img
            .gates
            .cross(&mut img.machine, sched_c, 0, 0, |m, rt| {
                let mut b = [0u8; 5];
                m.read(rt.current_ctx().vcpu, stack, &mut b)
            })
            .unwrap_err();
        assert!(err.is_protection_fault());
    }

    #[test]
    fn async_lib_calls_complete_across_backends() {
        // Direct (same-compartment), MPK and VM-RPC all complete through
        // the uniform submit/flush/reap API.
        for backend in [
            BackendChoice::None,
            BackendChoice::MpkShared,
            BackendChoice::VmRpc,
        ] {
            let mut img = instantiate(three_lib_plan(backend)).unwrap();
            for i in 0..4u64 {
                img.submit_lib("netstack", Sqe::new(16, 8, i)).unwrap();
            }
            let posted = img
                .call_lib_async("netstack", |m, _, sqe| {
                    m.charge(7);
                    Ok(sqe.user_data as i64 + 1)
                })
                .unwrap();
            assert_eq!(posted, 4, "{backend:?}");
            for i in 0..4u64 {
                let cqe = img.reap_lib("netstack").unwrap();
                assert_eq!(cqe.user_data, i);
                assert_eq!(cqe.res, i as i64 + 1);
            }
            assert!(matches!(
                img.reap_lib("netstack").unwrap_err(),
                Fault::RingEmpty { .. }
            ));
        }
        let mut img = instantiate(three_lib_plan(BackendChoice::None)).unwrap();
        assert!(matches!(
            img.submit_lib("no-such-lib", Sqe::new(0, 0, 0))
                .unwrap_err(),
            Fault::HardeningAbort {
                mechanism: "gate",
                ..
            }
        ));
    }

    #[test]
    fn global_allocator_mode_without_isolation() {
        let img = instantiate(three_lib_plan(BackendChoice::None)).unwrap();
        assert_eq!(img.heaps.mode(), flexos_kernel::AllocMode::Global);
        let img = instantiate(three_lib_plan(BackendChoice::MpkShared)).unwrap();
        assert_eq!(img.heaps.mode(), flexos_kernel::AllocMode::PerCompartment);
    }
}
