//! The VM-based isolation backend: RPC across EPT boundaries.
//!
//! "Our toolchain generates one VM image per compartment. … along with a
//! thin RPC implementation based on inter-VM notifications and a shared
//! area of memory for shared heap/static data. It is mapped in all
//! compartments (VMs) at an identical address so that pointers to/in
//! shared structures remain valid. Compartments do not share a single
//! address space anymore, and run on different vCPUs." (paper §3)
//!
//! A crossing marshals the argument frame into a per-direction RPC ring
//! in the shared window, rings the target VM's doorbell (charging the
//! inter-VM notification cost), and hands execution to the callee vCPU.
//!
//! The gate itself is stateless (`Copy`, no interior mutability): all
//! crossing state lives in the [`Machine`] it is handed. That is what
//! lets free-running SMP share one gate object across host threads, each
//! thread driving its own machine shard — cross-shard doorbells ride the
//! `flexos_kernel::smp` primitives ([`SpscRing`]/[`Doorbell`]), which
//! mirror the head/tail publication protocol of the in-machine message
//! queues.
//!
//! [`SpscRing`]: flexos_kernel::smp::SpscRing
//! [`Doorbell`]: flexos_kernel::smp::Doorbell

use flexos::gate::{CompartmentCtx, Gate, GateMechanism};
use flexos_machine::{Addr, Fault, Machine, NotifyFate, Result};

/// Size reserved in the shared window for each compartment's RPC inbox.
pub const RPC_INBOX_BYTES: u64 = 4096;

/// Retry discipline for lost doorbell notifications.
///
/// Inter-VM interrupts can be lost (in the simulation, injected by the
/// chaos layer; on real hardware, by a missed event-channel upcall). The
/// gate re-rings the doorbell with bounded exponential backoff — attempt
/// `k` sleeps `backoff_base_cycles << (k-1)` simulated cycles, with the
/// exponent capped at [`MAX_BACKOFF_SHIFT`] — and aborts with
/// [`Fault::GateTimeout`] once `max_attempts` deliveries have all gone
/// unanswered.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total delivery attempts before giving up (must be ≥ 1).
    pub max_attempts: u32,
    /// Backoff charged after the first failed attempt; doubles per retry.
    pub backoff_base_cycles: u64,
}

/// Ceiling on the backoff exponent. A `max_attempts` policy beyond 64
/// used to shift `backoff_base_cycles` by ≥ 64 bits — a panic in debug
/// builds and a wrap to a tiny (or zero) backoff in release. Capping at
/// 2³² × base keeps late retries enormous but finite, so the simulated
/// clock stays far from overflow no matter how large the retry budget
/// is; policies within the cap charge bit-identical backoffs to before.
pub const MAX_BACKOFF_SHIFT: u32 = 32;

impl RetryPolicy {
    /// The backoff charged after failed delivery attempt `attempt`
    /// (1-based): `base << (attempt-1)`, exponent capped and the shift
    /// checked so pathological policies saturate instead of overflowing.
    fn backoff_cycles(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(MAX_BACKOFF_SHIFT);
        match self.backoff_base_cycles.checked_shl(shift) {
            // `checked_shl` only guards the shift amount; detect bits
            // shifted out of a huge base by shifting back.
            Some(b) if b >> shift == self.backoff_base_cycles => b,
            _ => u64::MAX >> 16,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            backoff_base_cycles: 2_000,
        }
    }
}

/// The VM RPC gate. Holds the base of the RPC area in the shared window;
/// compartment `i`'s inbox sits at `rpc_base + i * RPC_INBOX_BYTES`.
#[derive(Debug, Clone, Copy)]
pub struct VmRpcGate {
    rpc_base: Addr,
    compartments: u16,
    retry: RetryPolicy,
}

impl VmRpcGate {
    /// Creates the gate over an RPC area of `compartments` inboxes, with
    /// the default [`RetryPolicy`].
    pub fn new(rpc_base: Addr, compartments: u16) -> Self {
        Self {
            rpc_base,
            compartments,
            retry: RetryPolicy::default(),
        }
    }

    /// Same, with an explicit retry policy.
    pub fn with_retry(rpc_base: Addr, compartments: u16, retry: RetryPolicy) -> Self {
        Self {
            rpc_base,
            compartments,
            retry,
        }
    }

    /// Bytes of shared memory this gate needs for `compartments` inboxes.
    pub fn area_bytes(compartments: u16) -> u64 {
        u64::from(compartments) * RPC_INBOX_BYTES
    }

    fn inbox(&self, c: u16) -> Addr {
        Addr(self.rpc_base.0 + u64::from(c) * RPC_INBOX_BYTES)
    }

    /// Marshals a `bytes`-long frame into `target`'s inbox, notifies it,
    /// and consumes the notification on the callee side (the synchronous
    /// closure model of [`GateRuntime::cross`]).
    ///
    /// [`GateRuntime::cross`]: flexos::gate::GateRuntime::cross
    fn rpc(
        &self,
        m: &mut Machine,
        from: &CompartmentCtx,
        to: &CompartmentCtx,
        bytes: u64,
    ) -> Result<()> {
        if to.id.0 >= self.compartments {
            return Err(Fault::HardeningAbort {
                mechanism: "vmrpc",
                reason: format!("no RPC inbox for {}", to.id),
            });
        }
        if bytes > RPC_INBOX_BYTES - 16 {
            return Err(Fault::HardeningAbort {
                mechanism: "vmrpc",
                reason: format!("RPC frame of {bytes} bytes exceeds inbox"),
            });
        }
        // Marshal: descriptor (call id + length) followed by the frame.
        // The frame contents are produced by the caller into the shared
        // window; here we charge the copy and write the descriptor so the
        // data path is exercised under enforcement.
        m.charge(m.costs().vm_rpc_marshal + m.costs().copy_cost(bytes));
        let inbox = self.inbox(to.id.0);
        m.write_u64(from.vcpu, inbox, u64::from(from.id.0))?;
        m.write_u64(from.vcpu, Addr(inbox.0 + 8), bytes)?;
        // Ring the doorbell (charges `vm_notify`) and let the callee vCPU
        // consume it. Notifications can be lost, so re-ring with bounded
        // exponential backoff before declaring the gate dead.
        let expected = u64::from(from.id.0);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            m.notify(from.vcpu, to.vm, expected)?;
            match m.take_notification(to.vm) {
                Some(n) => {
                    if n.word != expected {
                        return Err(Fault::DoorbellMismatch {
                            expected,
                            got: n.word,
                        });
                    }
                    // Absorb duplicate deliveries of our own doorbell so a
                    // stale copy can't be misread as the next crossing.
                    while m
                        .peek_notification(to.vm)
                        .is_some_and(|d| d.word == expected && d.from == from.vm)
                    {
                        m.take_notification(to.vm);
                    }
                    return Ok(());
                }
                None => {
                    if attempt >= self.retry.max_attempts.max(1) {
                        return Err(Fault::GateTimeout {
                            mechanism: "vmrpc",
                            attempts: attempt,
                        });
                    }
                    m.charge(self.retry.backoff_cycles(attempt));
                }
            }
        }
    }

    /// [`VmRpcGate::rpc`] with the doorbell coalesced away.
    ///
    /// Calls 1…N−1 of a batch use this path: the batch head already rang
    /// the target's doorbell for real, and the synchronous crossing model
    /// means posting another notification and immediately consuming it is
    /// pure host-side queue churn. [`Machine::notify_coalesced`] charges
    /// the identical `vm_notify` cost, draws the identical chaos fate and
    /// records the identical injected-fault telemetry per message — only
    /// the post/take round trip on the queue is elided — and the retry /
    /// backoff / timeout discipline below mirrors `rpc` decision for
    /// decision.
    ///
    /// If anything is already queued on the target (e.g. a forged
    /// doorbell posted by an attacker between calls), this falls back to
    /// the exact path so the take-and-check sequence still raises
    /// [`Fault::DoorbellMismatch`].
    fn rpc_coalesced(
        &self,
        m: &mut Machine,
        from: &CompartmentCtx,
        to: &CompartmentCtx,
        bytes: u64,
    ) -> Result<()> {
        if m.peek_notification(to.vm).is_some() {
            return self.rpc(m, from, to, bytes);
        }
        if to.id.0 >= self.compartments {
            return Err(Fault::HardeningAbort {
                mechanism: "vmrpc",
                reason: format!("no RPC inbox for {}", to.id),
            });
        }
        if bytes > RPC_INBOX_BYTES - 16 {
            return Err(Fault::HardeningAbort {
                mechanism: "vmrpc",
                reason: format!("RPC frame of {bytes} bytes exceeds inbox"),
            });
        }
        m.charge(m.costs().vm_rpc_marshal + m.costs().copy_cost(bytes));
        // Descriptor stores hit the same validated inbox page every call
        // of the batch; `write_u64_hot` caches that one translation.
        let inbox = self.inbox(to.id.0);
        m.write_u64_hot(from.vcpu, inbox, u64::from(from.id.0))?;
        m.write_u64_hot(from.vcpu, Addr(inbox.0 + 8), bytes)?;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match m.notify_coalesced(from.vcpu, to.vm)? {
                // Deliver: the exact path would take its own doorbell
                // straight back off the queue. Duplicate: it would take
                // one copy and absorb the other. Either way the queue is
                // unchanged and the crossing succeeds.
                NotifyFate::Deliver | NotifyFate::Duplicate => return Ok(()),
                NotifyFate::Drop => {
                    if attempt >= self.retry.max_attempts.max(1) {
                        return Err(Fault::GateTimeout {
                            mechanism: "vmrpc",
                            attempts: attempt,
                        });
                    }
                    m.charge(self.retry.backoff_cycles(attempt));
                }
            }
        }
    }
}

impl Gate for VmRpcGate {
    fn mechanism(&self) -> GateMechanism {
        GateMechanism::VmRpc
    }

    fn enter(
        &self,
        m: &mut Machine,
        from: &CompartmentCtx,
        to: &CompartmentCtx,
        arg_bytes: u64,
    ) -> Result<()> {
        self.rpc(m, from, to, arg_bytes)
    }

    fn exit(
        &self,
        m: &mut Machine,
        callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        ret_bytes: u64,
    ) -> Result<()> {
        // The response travels the same path in reverse.
        self.rpc(m, callee, caller, ret_bytes)
    }

    // Batched crossings ring each direction's doorbell for real once, on
    // the batch head; the remaining messages coalesce theirs (see
    // `rpc_coalesced` for the equivalence argument).

    fn enter_nth(
        &self,
        m: &mut Machine,
        from: &CompartmentCtx,
        to: &CompartmentCtx,
        arg_bytes: u64,
        idx: usize,
    ) -> Result<()> {
        if idx == 0 {
            self.rpc(m, from, to, arg_bytes)
        } else {
            self.rpc_coalesced(m, from, to, arg_bytes)
        }
    }

    fn exit_nth(
        &self,
        m: &mut Machine,
        callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        ret_bytes: u64,
        idx: usize,
    ) -> Result<()> {
        if idx == 0 {
            self.rpc(m, callee, caller, ret_bytes)
        } else {
            self.rpc_coalesced(m, callee, caller, ret_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos::gate::CompartmentId;
    use flexos::spec::ShSet;
    use flexos_machine::{PageFlags, Pkru, ProtKey, VcpuId, VmId};

    fn setup() -> (Machine, VmRpcGate, CompartmentCtx, CompartmentCtx) {
        let mut m = Machine::with_defaults();
        let vm1 = m.add_vm(false);
        let vcpu1 = m.add_vcpu(vm1);
        let rpc_base = m
            .alloc_shared_region(VmRpcGate::area_bytes(2), ProtKey(0))
            .unwrap();
        let gate = VmRpcGate::new(rpc_base, 2);
        let heap0 = m
            .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
            .unwrap();
        let heap1 = m
            .alloc_region(vm1, 4096, ProtKey(0), PageFlags::RW)
            .unwrap();
        let c0 = CompartmentCtx {
            id: CompartmentId(0),
            name: "rest".into(),
            vm: VmId(0),
            vcpu: VcpuId(0),
            pkru: Pkru::ALLOW_ALL,
            keys: vec![],
            sh: ShSet::none(),
            heap_base: heap0,
            heap_size: 4096,
        };
        let c1 = CompartmentCtx {
            id: CompartmentId(1),
            name: "net".into(),
            vm: vm1,
            vcpu: vcpu1,
            pkru: Pkru::ALLOW_ALL,
            keys: vec![],
            sh: ShSet::none(),
            heap_base: heap1,
            heap_size: 4096,
        };
        (m, gate, c0, c1)
    }

    #[test]
    fn rpc_charges_notification_and_marshalling() {
        let (mut m, gate, c0, c1) = setup();
        let t0 = m.clock().cycles();
        gate.enter(&mut m, &c0, &c1, 64).unwrap();
        let charged = m.clock().cycles() - t0;
        assert!(charged >= m.costs().vm_notify + m.costs().vm_rpc_marshal);
        // Descriptor landed in the callee-visible inbox.
        let inbox = Addr(gate.rpc_base.0 + RPC_INBOX_BYTES);
        assert_eq!(m.read_u64(c1.vcpu, inbox).unwrap(), 0); // from compartment 0
        assert_eq!(m.read_u64(c1.vcpu, Addr(inbox.0 + 8)).unwrap(), 64);
    }

    #[test]
    fn rpc_round_trip_is_far_costlier_than_mpk() {
        let (mut m, gate, c0, c1) = setup();
        let t0 = m.clock().cycles();
        gate.enter(&mut m, &c0, &c1, 32).unwrap();
        gate.exit(&mut m, &c1, &c0, 8).unwrap();
        let rpc_cost = m.clock().cycles() - t0;
        assert!(rpc_cost > 10 * 2 * m.costs().mpk_switched_gate());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let (mut m, gate, c0, c1) = setup();
        assert!(gate.enter(&mut m, &c0, &c1, RPC_INBOX_BYTES).is_err());
    }

    #[test]
    fn callee_vm_cannot_reach_caller_private_heap() {
        let (mut m, _gate, c0, c1) = setup();
        m.write(c0.vcpu, c0.heap_base, b"private").unwrap();
        let mut buf = [0u8; 7];
        // From VM 1, compartment 0's private heap is not mapped.
        assert!(m.read(c1.vcpu, c0.heap_base, &mut buf).is_err());
    }

    #[test]
    fn unknown_target_compartment_is_rejected() {
        let (mut m, gate, c0, _c1) = setup();
        let mut bogus = c0.clone();
        bogus.id = CompartmentId(9);
        assert!(gate.enter(&mut m, &c0, &bogus, 0).is_err());
    }

    #[test]
    fn forged_doorbell_payload_is_rejected_at_runtime() {
        let (mut m, gate, c0, c1) = setup();
        // An attacker rings the callee's doorbell with a bogus descriptor
        // word before the legitimate crossing: the gate must notice the
        // mismatch even in release builds (this used to be a debug_assert).
        m.notify(c0.vcpu, c1.vm, 0xbad).unwrap();
        let err = gate.enter(&mut m, &c0, &c1, 16).unwrap_err();
        assert!(matches!(err, Fault::DoorbellMismatch { got: 0xbad, .. }));
        assert!(err.is_protection_fault());
    }

    #[test]
    fn lost_doorbell_is_retried_with_backoff() {
        use flexos_machine::{ChaosConfig, ChaosPlan, Schedule};
        // Baseline: the cost of one clean crossing.
        let t_nochaos = {
            let (mut m2, gate2, b0, b1) = setup();
            let t0 = m2.clock().cycles();
            gate2.enter(&mut m2, &b0, &b1, 16).unwrap();
            m2.clock().cycles() - t0
        };
        // Drop every even-numbered notification: the second crossing's
        // first ring is lost and its retry lands.
        let (mut m, gate, c0, c1) = setup();
        m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 1,
            notify_drop: Schedule::EveryNth(2),
            ..Default::default()
        }));
        // First notify survives (EveryNth(2) fires on calls 2, 4, …).
        gate.enter(&mut m, &c0, &c1, 16).unwrap();
        // Second crossing: ring dropped, retry succeeds.
        let t0 = m.clock().cycles();
        gate.enter(&mut m, &c0, &c1, 16).unwrap();
        let with_retry = m.clock().cycles() - t0;
        assert_eq!(m.chaos_stats().unwrap().dropped_notifications, 1);
        // The retried crossing paid at least one backoff plus a second
        // notification on top of the clean-path cost.
        assert!(with_retry >= t_nochaos + RetryPolicy::default().backoff_base_cycles);
    }

    #[test]
    fn all_doorbells_lost_times_out_with_typed_fault() {
        use flexos_machine::{ChaosConfig, ChaosPlan, Schedule};
        let (mut m, gate, c0, c1) = setup();
        m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 1,
            notify_drop: Schedule::EveryNth(1), // 100% loss
            ..Default::default()
        }));
        let err = gate.enter(&mut m, &c0, &c1, 16).unwrap_err();
        assert_eq!(
            err,
            Fault::GateTimeout {
                mechanism: "vmrpc",
                attempts: RetryPolicy::default().max_attempts,
            }
        );
    }

    /// Regression: a retry budget past 64 attempts used to shift the
    /// backoff base by ≥ 64 bits — a debug-build panic (and a wrapped,
    /// near-zero backoff in release) — once 100% doorbell loss pushed
    /// the exponent that far. Both the exact and the coalesced path must
    /// now exhaust the whole budget and return the typed timeout.
    #[test]
    fn huge_retry_budget_under_total_loss_times_out_without_overflow() {
        use flexos_machine::{ChaosConfig, ChaosPlan, Schedule};
        let policy = RetryPolicy {
            max_attempts: 80,
            backoff_base_cycles: 2,
        };
        // idx 0 exercises `rpc`; idx > 0 exercises `rpc_coalesced`.
        for idx in [0usize, 3] {
            let (mut m, default_gate, c0, c1) = setup();
            let gate = VmRpcGate::with_retry(default_gate.rpc_base, 2, policy);
            m.set_chaos(ChaosPlan::new(ChaosConfig {
                seed: 1,
                notify_drop: Schedule::EveryNth(1), // 100% loss
                ..Default::default()
            }));
            let err = gate.enter_nth(&mut m, &c0, &c1, 16, idx).unwrap_err();
            assert_eq!(
                err,
                Fault::GateTimeout {
                    mechanism: "vmrpc",
                    attempts: 80,
                },
                "idx={idx}"
            );
        }
    }

    #[test]
    fn backoff_exponent_is_capped_and_value_saturates() {
        let policy = RetryPolicy {
            max_attempts: 200,
            backoff_base_cycles: 2_000,
        };
        // Within the cap: bit-identical to the plain shift.
        assert_eq!(policy.backoff_cycles(1), 2_000);
        assert_eq!(policy.backoff_cycles(5), 2_000 << 4);
        // Past the cap: frozen at base << MAX_BACKOFF_SHIFT.
        assert_eq!(
            policy.backoff_cycles(70),
            2_000u64 << MAX_BACKOFF_SHIFT,
            "exponent must stop growing at the cap"
        );
        // A base so large the capped shift itself would overflow: the
        // backoff saturates instead of silently dropping high bits.
        let huge = RetryPolicy {
            max_attempts: 200,
            backoff_base_cycles: u64::MAX / 2,
        };
        assert_eq!(huge.backoff_cycles(40), u64::MAX >> 16);
    }

    #[test]
    fn duplicated_doorbells_are_absorbed() {
        use flexos_machine::{ChaosConfig, ChaosPlan, Schedule};
        let (mut m, gate, c0, c1) = setup();
        m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 1,
            notify_dup: Schedule::EveryNth(1), // every doorbell delivered twice
            ..Default::default()
        }));
        gate.enter(&mut m, &c0, &c1, 16).unwrap();
        // The duplicate must not linger to corrupt the next crossing.
        assert!(m.peek_notification(c1.vm).is_none());
        gate.enter(&mut m, &c0, &c1, 16).unwrap();
        assert!(m.peek_notification(c1.vm).is_none());
    }

    /// Drives `n` batched crossings (enter + exit per call, like
    /// `cross_batch`) and returns the cycles they charged.
    fn run_batched(
        m: &mut Machine,
        gate: &VmRpcGate,
        c0: &CompartmentCtx,
        c1: &CompartmentCtx,
        n: usize,
    ) -> u64 {
        let t0 = m.clock().cycles();
        for idx in 0..n {
            gate.enter_nth(m, c0, c1, 16, idx).unwrap();
            gate.exit_nth(m, c1, c0, 8, idx).unwrap();
        }
        m.clock().cycles() - t0
    }

    /// Same crossings through the exact single-call path.
    fn run_exact(
        m: &mut Machine,
        gate: &VmRpcGate,
        c0: &CompartmentCtx,
        c1: &CompartmentCtx,
        n: usize,
    ) -> u64 {
        let t0 = m.clock().cycles();
        for _ in 0..n {
            gate.enter(m, c0, c1, 16).unwrap();
            gate.exit(m, c1, c0, 8).unwrap();
        }
        m.clock().cycles() - t0
    }

    #[test]
    fn coalesced_batch_is_cycle_identical_to_exact_path() {
        let (mut m1, gate1, a0, a1) = setup();
        let (mut m2, gate2, b0, b1) = setup();
        let batched = run_batched(&mut m1, &gate1, &a0, &a1, 8);
        let exact = run_exact(&mut m2, &gate2, &b0, &b1, 8);
        assert_eq!(batched, exact);
        // Both leave the doorbell queues drained and the same descriptor
        // in each inbox.
        assert!(m1.peek_notification(a1.vm).is_none());
        assert!(m2.peek_notification(b1.vm).is_none());
        let inbox = Addr(gate1.rpc_base.0 + RPC_INBOX_BYTES);
        assert_eq!(
            m1.read_u64(a1.vcpu, inbox).unwrap(),
            m2.read_u64(b1.vcpu, inbox).unwrap()
        );
    }

    #[test]
    fn coalesced_batch_matches_exact_path_under_chaos() {
        use flexos_machine::{ChaosConfig, ChaosPlan, Schedule};
        for (drop, dup) in [
            (Schedule::EveryNth(2), Schedule::Off),
            (Schedule::Off, Schedule::EveryNth(1)),
            (Schedule::EveryNth(3), Schedule::EveryNth(2)),
        ] {
            let cfg = ChaosConfig {
                seed: 7,
                notify_drop: drop,
                notify_dup: dup,
                ..Default::default()
            };
            let (mut m1, gate1, a0, a1) = setup();
            m1.set_chaos(ChaosPlan::new(cfg));
            let (mut m2, gate2, b0, b1) = setup();
            m2.set_chaos(ChaosPlan::new(cfg));
            let batched = run_batched(&mut m1, &gate1, &a0, &a1, 6);
            let exact = run_exact(&mut m2, &gate2, &b0, &b1, 6);
            assert_eq!(batched, exact, "cycles diverged under {drop:?}/{dup:?}");
            assert_eq!(
                m1.chaos_stats().unwrap().dropped_notifications,
                m2.chaos_stats().unwrap().dropped_notifications
            );
            assert!(m1.peek_notification(a1.vm).is_none());
        }
    }

    #[test]
    fn forged_doorbell_mid_batch_is_still_rejected() {
        let (mut m, gate, c0, c1) = setup();
        gate.enter_nth(&mut m, &c0, &c1, 16, 0).unwrap();
        // An attacker rings the callee's doorbell between two batched
        // calls: the coalesced path must fall back to take-and-check and
        // raise the same mismatch fault as the exact path.
        m.notify(c0.vcpu, c1.vm, 0xbad).unwrap();
        let err = gate.enter_nth(&mut m, &c0, &c1, 16, 1).unwrap_err();
        assert!(matches!(err, Fault::DoorbellMismatch { got: 0xbad, .. }));
    }

    #[test]
    fn coalesced_tail_times_out_like_exact_path() {
        use flexos_machine::{ChaosConfig, ChaosPlan, Schedule};
        let (mut m, gate, c0, c1) = setup();
        m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 1,
            notify_drop: Schedule::EveryNth(1), // 100% loss
            ..Default::default()
        }));
        let err = gate.enter_nth(&mut m, &c0, &c1, 16, 3).unwrap_err();
        assert_eq!(
            err,
            Fault::GateTimeout {
                mechanism: "vmrpc",
                attempts: RetryPolicy::default().max_attempts,
            }
        );
    }

    #[test]
    fn gate_object_is_shareable_across_host_threads() {
        // Free-running SMP shares one booted image's gate objects across
        // host threads, each driving its own machine shard. `Gate` is
        // `Send + Sync` by trait bound; this test exercises the claim on
        // the stateless `VmRpcGate`: four threads hammer the same gate
        // through an `Arc` against private machines and must all charge
        // exactly the cycles a sequential run charges.
        let (mut seq_m, seq_gate, seq_c0, seq_c1) = setup();
        let expected = run_exact(&mut seq_m, &seq_gate, &seq_c0, &seq_c1, 16);

        let shared: std::sync::Arc<dyn Gate> = std::sync::Arc::new(setup().1);
        let charged = flexos_kernel::smp::run_on_threads(4, |_vcpu| {
            let (mut m, _, c0, c1) = setup();
            let gate = std::sync::Arc::clone(&shared);
            let t0 = m.clock().cycles();
            for _ in 0..16 {
                gate.enter(&mut m, &c0, &c1, 16).unwrap();
                gate.exit(&mut m, &c1, &c0, 8).unwrap();
            }
            m.clock().cycles() - t0
        });
        assert_eq!(charged, vec![expected; 4]);
    }
}
