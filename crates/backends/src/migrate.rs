//! Live gate-backend migration: the backend half of the quiescence
//! protocol.
//!
//! `flexos::gate` owns the drain machinery (admission stop, safe points,
//! SQE requeue); this module owns what is backend-specific about a swap:
//! building the incoming gate and the **re-establishment closure** that
//! runs at quiescence, immediately before the new gate becomes visible:
//!
//! * **pkey retags** — each endpoint's heap pages are retagged through
//!   [`Machine::set_region_key`], riding the existing generation-counter
//!   TLB invalidation, so MPK-family backends find their isolation
//!   boundary material when they arrive and leave no stale tags behind
//!   when they go;
//! * **PKRU views** — an endpoint's view is the *strictest* any of its
//!   pair backends requires: if any pair is MPK-family the view stays
//!   `deny_all_except(key0, own)`, otherwise it relaxes to allow-all.
//!   The current compartment's live PKRU register is refreshed through
//!   the gate capability token;
//! * **VM-RPC inbox hygiene** — a pair entering or leaving the VM-RPC
//!   backend drains stale doorbell notifications so a pre-swap delivery
//!   can never be misread as a post-swap crossing.
//!
//! Pairs on a [`boot::instantiate_migratable`] image can swap freely in
//! any direction; on a regular [`boot::instantiate`] image, migrating
//! *to* an MPK-family backend requires per-compartment keys (boot-time
//! state this layer will not invent), and migrating *to* VM-RPC lazily
//! reserves the inbox area via [`ensure_rpc_base`].
//!
//! [`boot::instantiate`]: crate::boot::instantiate
//! [`boot::instantiate_migratable`]: crate::boot::instantiate_migratable
//! [`Machine::set_region_key`]: flexos_machine::Machine::set_region_key

use crate::boot::BootImage;
use crate::cheri::CheriGate;
use crate::mpk::{MpkSharedGate, MpkSwitchedGate};
use crate::vmrpc::VmRpcGate;
use flexos::build::BackendChoice;
use flexos::gate::{
    CompartmentId, DirectGate, Gate, GateMechanism, MigrationReason, ReestablishFn,
};
use flexos_machine::{Addr, Fault, Pkru, ProtKey, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Whether a mechanism enforces through MPK-style page tags (the CHERI
/// model rides the same tag machinery — see `crate::cheri`).
pub fn mpk_family(mech: GateMechanism) -> bool {
    matches!(
        mech,
        GateMechanism::MpkSharedStack | GateMechanism::MpkSwitchedStack | GateMechanism::Cheri
    )
}

fn norm(a: CompartmentId, b: CompartmentId) -> (CompartmentId, CompartmentId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Returns the VM-RPC inbox base, reserving the area on first use.
/// Migratable boots pre-reserve it; a plain boot that later escalates to
/// VM-RPC pays one shared-region allocation here, once.
pub fn ensure_rpc_base(img: &mut BootImage) -> Result<Addr> {
    if let Some(base) = img.rpc_base {
        return Ok(base);
    }
    let n = img.gates.len() as u16;
    let base = img
        .machine
        .alloc_shared_region(VmRpcGate::area_bytes(n), ProtKey(0))?;
    img.rpc_base = Some(base);
    Ok(base)
}

fn make_gate(img: &mut BootImage, to: BackendChoice) -> Result<Arc<dyn Gate>> {
    let token = img.machine.gate_token();
    Ok(match to {
        BackendChoice::None => Arc::new(DirectGate),
        BackendChoice::MpkShared => Arc::new(MpkSharedGate::new(token)),
        BackendChoice::MpkSwitched => Arc::new(MpkSwitchedGate::new(token)),
        BackendChoice::Cheri => Arc::new(CheriGate::new(token)),
        BackendChoice::VmRpc => {
            let base = ensure_rpc_base(img)?;
            Arc::new(VmRpcGate::new(base, img.gates.len() as u16))
        }
    })
}

/// What one endpoint should look like after the swaps in `planned` land.
fn endpoint_target(
    img: &BootImage,
    e: CompartmentId,
    planned: &BTreeMap<(CompartmentId, CompartmentId), GateMechanism>,
) -> Result<(Pkru, ProtKey)> {
    let n = img.gates.len() as u16;
    let wants_mpk = (0..n).filter(|&o| o != e.0).any(|o| {
        let other = CompartmentId(o);
        let mech = planned
            .get(&norm(e, other))
            .copied()
            .unwrap_or_else(|| img.gates.pair_mechanism(e, other));
        mpk_family(mech)
    });
    if !wants_mpk {
        return Ok((Pkru::ALLOW_ALL, ProtKey(0)));
    }
    let own = img
        .gates
        .ctx(e)
        .keys
        .first()
        .copied()
        .ok_or_else(|| Fault::HardeningAbort {
            mechanism: "migrate",
            reason: format!(
                "{e} has no protection key; boot with instantiate_migratable to \
                 migrate into an MPK-family backend"
            ),
        })?;
    Ok((Pkru::deny_all_except(&[ProtKey(0), own], &[]), own))
}

/// Builds the incoming gate and re-establishment closure for swapping
/// the `(a, b)` pair to `to`, assuming every swap in `planned` (at
/// minimum this pair's) will land. The caller passes both to
/// [`GateRuntime::request_migration`](flexos::gate::GateRuntime::request_migration).
pub fn prepare_pair_migration(
    img: &mut BootImage,
    a: CompartmentId,
    b: CompartmentId,
    to: BackendChoice,
    planned: &BTreeMap<(CompartmentId, CompartmentId), GateMechanism>,
) -> Result<(Arc<dyn Gate>, ReestablishFn)> {
    let old_mech = img.gates.pair_mechanism(a, b);
    let gate = make_gate(img, to)?;
    let token = img.machine.gate_token();
    // Decide each endpoint's post-swap protection view now, while the
    // planned-swaps map is in scope; the closure replays the decision at
    // quiescence, however long the drain takes.
    let targets: Vec<(CompartmentId, Pkru, ProtKey)> = [a, b]
        .into_iter()
        .map(|e| endpoint_target(img, e, planned).map(|(pkru, key)| (e, pkru, key)))
        .collect::<Result<_>>()?;
    let rpc_involved = old_mech == GateMechanism::VmRpc || to == BackendChoice::VmRpc;
    let re: ReestablishFn = Arc::new(move |m, cpts, cur| {
        for &(e, pkru, key) in &targets {
            let ctx = &cpts[e.0 as usize];
            // Retag the endpoint's heap; set_region_key bumps the page-
            // table generation, so every vCPU's TLB drops the old tags.
            m.set_region_key(ctx.vm, ctx.heap_base, ctx.heap_size, key)?;
            cpts[e.0 as usize].pkru = pkru;
            if cur == e {
                let vcpu = cpts[e.0 as usize].vcpu;
                if m.rdpkru(vcpu) != pkru {
                    m.restore_pkru(vcpu, pkru, token)?;
                }
            }
        }
        if rpc_involved {
            // Inbox hygiene: a doorbell posted before the swap must not
            // satisfy (or corrupt) a post-swap crossing.
            for &(e, _, _) in &targets {
                let vm = cpts[e.0 as usize].vm;
                while m.take_notification(vm).is_some() {}
            }
        }
        Ok(())
    });
    Ok((gate, re))
}

/// Requests a live swap of the `(a, b)` pair's backend to `to`. Returns
/// `Ok(true)` if the swap applied immediately (the pair was quiescent),
/// `Ok(false)` if it is draining and will land at the next safe point.
pub fn migrate_pair(
    img: &mut BootImage,
    a: CompartmentId,
    b: CompartmentId,
    to: BackendChoice,
    reason: MigrationReason,
) -> Result<bool> {
    let mut planned = BTreeMap::new();
    planned.insert(norm(a, b), to.mechanism());
    let (gate, re) = prepare_pair_migration(img, a, b, to, &planned)?;
    img.gates
        .request_migration(&mut img.machine, a, b, gate, reason, Some(re))
}

/// Migrates **every** compartment pair to `to` — the whole-image
/// reconfiguration the `--migrate` sweeps and the serving tier use.
/// Returns `(applied, deferred)` counts; deferred swaps land at their
/// pairs' next safe points. The image plan's recorded backend is updated
/// to `to` so stack policy and reporting follow the destination.
pub fn migrate_all(
    img: &mut BootImage,
    to: BackendChoice,
    reason: MigrationReason,
) -> Result<(usize, usize)> {
    let n = img.gates.len() as u16;
    let mut planned = BTreeMap::new();
    for a in 0..n {
        for b in (a + 1)..n {
            planned.insert((CompartmentId(a), CompartmentId(b)), to.mechanism());
        }
    }
    let pairs: Vec<_> = planned.keys().copied().collect();
    let (mut applied, mut deferred) = (0, 0);
    for (a, b) in pairs {
        let (gate, re) = prepare_pair_migration(img, a, b, to, &planned)?;
        if img
            .gates
            .request_migration(&mut img.machine, a, b, gate, reason, Some(re))?
        {
            applied += 1;
        } else {
            deferred += 1;
        }
    }
    img.plan.config.backend = to;
    Ok((applied, deferred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boot::{instantiate, instantiate_migratable};
    use flexos::build::{plan, ImageConfig, LibRole, LibraryConfig};
    use flexos::spec::LibSpec;

    const ALL: [BackendChoice; 5] = [
        BackendChoice::None,
        BackendChoice::MpkShared,
        BackendChoice::MpkSwitched,
        BackendChoice::VmRpc,
        BackendChoice::Cheri,
    ];

    fn migratable(from: BackendChoice) -> BootImage {
        // Color with an isolating backend so the plan keeps all three
        // compartments; the boot overrides the stored backend to `from`.
        let cfg = ImageConfig::new("mig", BackendChoice::MpkShared)
            .with_library(LibraryConfig::new(
                LibSpec::verified_scheduler(),
                LibRole::Scheduler,
            ))
            .with_library(LibraryConfig::new(
                LibSpec::unsafe_c("netstack"),
                LibRole::NetStack,
            ))
            .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
        instantiate_migratable(plan(cfg).unwrap(), from).unwrap()
    }

    #[test]
    fn migratable_layout_is_identical_across_boot_backends() {
        let reference: Vec<_> = {
            let img = migratable(BackendChoice::None);
            (0..img.gates.len())
                .map(|c| {
                    let ctx = img.gates.ctx(CompartmentId(c as u16));
                    (ctx.heap_base, ctx.heap_size, ctx.vm, ctx.vcpu)
                })
                .collect()
        };
        for from in ALL {
            let img = migratable(from);
            assert_eq!(img.plan.config.backend, from);
            let layout: Vec<_> = (0..img.gates.len())
                .map(|c| {
                    let ctx = img.gates.ctx(CompartmentId(c as u16));
                    (ctx.heap_base, ctx.heap_size, ctx.vm, ctx.vcpu)
                })
                .collect();
            assert_eq!(layout, reference, "layout depends on {from:?}");
            assert!(img.rpc_base.is_some(), "inbox area always reserved");
        }
    }

    #[test]
    fn every_ordered_pair_migrates_and_crosses() {
        for from in ALL {
            for to in ALL {
                let mut img = migratable(from);
                let n = img.gates.len();
                let (applied, deferred) =
                    migrate_all(&mut img, to, MigrationReason::Manual).unwrap();
                assert_eq!(deferred, 0, "{from:?}→{to:?}: image was quiescent");
                assert_eq!(applied, n * (n - 1) / 2, "{from:?}→{to:?}");
                // The swapped gate actually crosses.
                let v = img
                    .call_lib("netstack", 16, 8, |m, _| {
                        m.charge(5);
                        Ok(7)
                    })
                    .unwrap();
                assert_eq!(v, 7, "{from:?}→{to:?}");
                assert_eq!(img.gates.migration_stats().completed, applied as u64);
            }
        }
    }

    #[test]
    fn migrating_to_mpk_establishes_enforcement() {
        let mut img = migratable(BackendChoice::None);
        // Pre-swap: no isolation, foreign heaps are open.
        let sched_c = img.compartment_of_role(LibRole::Scheduler).unwrap();
        let sched_heap = img.gates.ctx(sched_c).heap_base;
        img.write(sched_heap, b"open").unwrap();
        let n = img.gates.len() as u64;
        migrate_all(
            &mut img,
            BackendChoice::MpkShared,
            MigrationReason::Escalate,
        )
        .unwrap();
        // Post-swap: the same access faults — the retag + PKRU
        // re-establishment made the boundary material.
        let err = img.write(sched_heap, b"attack").unwrap_err();
        assert!(err.is_protection_fault(), "got {err:?}");
        // …and the legitimate path still works.
        img.call_lib("uksched_verified", 8, 8, |m, rt| {
            let vcpu = rt.current_ctx().vcpu;
            m.write(vcpu, sched_heap, b"legit")
        })
        .unwrap();
        assert_eq!(img.gates.migration_stats().escalations, n * (n - 1) / 2);
    }

    #[test]
    fn migrating_to_direct_relaxes_enforcement() {
        let mut img = migratable(BackendChoice::MpkShared);
        let n = img.gates.len() as u64;
        let sched_c = img.compartment_of_role(LibRole::Scheduler).unwrap();
        let sched_heap = img.gates.ctx(sched_c).heap_base;
        assert!(img.write(sched_heap, b"attack").is_err());
        migrate_all(&mut img, BackendChoice::None, MigrationReason::Relax).unwrap();
        img.write(sched_heap, b"open").unwrap();
        assert_eq!(img.gates.migration_stats().relaxations, n * (n - 1) / 2);
    }

    #[test]
    fn plain_boot_escalates_to_vmrpc_with_a_lazy_inbox() {
        let cfg = ImageConfig::new("plain", BackendChoice::None)
            .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
        let mut img = instantiate(plan(cfg).unwrap()).unwrap();
        assert!(img.rpc_base.is_none());
        // Single compartment: nothing to migrate, but the helper works.
        let base = ensure_rpc_base(&mut img).unwrap();
        assert_eq!(img.rpc_base, Some(base));
        assert_eq!(ensure_rpc_base(&mut img).unwrap(), base);
    }

    #[test]
    fn plain_boot_cannot_enter_mpk_without_keys() {
        // A VM-RPC boot has keyless compartments; migrating a pair into
        // the MPK family must refuse rather than silently not isolate.
        let cfg = ImageConfig::new("plain", BackendChoice::VmRpc)
            .with_library(LibraryConfig::new(
                LibSpec::verified_scheduler(),
                LibRole::Scheduler,
            ))
            .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
        let mut img = instantiate(plan(cfg).unwrap()).unwrap();
        let err = migrate_pair(
            &mut img,
            CompartmentId(0),
            CompartmentId(1),
            BackendChoice::MpkShared,
            MigrationReason::Manual,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Fault::HardeningAbort {
                mechanism: "migrate",
                ..
            }
        ));
        // The pair keeps its old backend.
        assert_eq!(
            img.gates.pair_mechanism(CompartmentId(0), CompartmentId(1)),
            GateMechanism::VmRpc
        );
    }
}
