//! The Intel MPK isolation backend: shared-stack and switched-stack gates.
//!
//! "Our MPK backend places each compartment in its own MPK memory region,
//! including static memory, heap, stack, and TLS. … Our MPK backend
//! supports two types of gates. In the shared-stack gate, heap and static
//! memory are isolated and only shared data is accessible from all
//! compartments …; thread stacks are located in a domain shared by all
//! compartments. This gate is similar to ERIM's. With the switched stack
//! gate, the heap, stacks, and static memory are all isolated. There is
//! one stack per thread per compartment and the stack is switched at
//! domain boundaries. Parameters are copied to the target domain stack
//! … This gate is similar to HODOR's." (paper §3)
//!
//! Both gates carry the machine's [`GateToken`], modelling the vetted
//! `wrpkru` call sites: only gate code may change PKRU (the paper's
//! defense against unauthorized PKRU writes).

use flexos::gate::{CompartmentCtx, Gate, GateMechanism};
use flexos_machine::{GateToken, Machine, Result};

/// ERIM-style MPK gate: PKRU switch, shared stacks, no argument copying
/// (arguments stay on the shared stack domain).
#[derive(Debug, Clone, Copy)]
pub struct MpkSharedGate {
    token: GateToken,
}

impl MpkSharedGate {
    /// Creates the gate; `token` authorizes its `wrpkru` call sites.
    pub fn new(token: GateToken) -> Self {
        Self { token }
    }

    fn switch_to(&self, m: &mut Machine, to: &CompartmentCtx) -> Result<()> {
        // Call-site validation + register clearing, then the PKRU write
        // itself (the machine charges `wrpkru`).
        m.charge(m.costs().pkru_guard_check + m.costs().mpk_gate_overhead);
        m.wrpkru(to.vcpu, to.pkru, Some(self.token))
    }

    /// The batched crossing path: the guard-check/trampoline charge and
    /// the PKRU write are fused into one machine call. The clock is
    /// additive and neither half draws chaos, so the simulated cost and
    /// fault behaviour are identical to `switch_to` — only the host-side
    /// double dispatch is elided.
    fn switch_to_fused(&self, m: &mut Machine, to: &CompartmentCtx) -> Result<()> {
        m.wrpkru_with_overhead(
            to.vcpu,
            to.pkru,
            Some(self.token),
            m.costs().pkru_guard_check + m.costs().mpk_gate_overhead,
        )
    }
}

impl Gate for MpkSharedGate {
    fn mechanism(&self) -> GateMechanism {
        GateMechanism::MpkSharedStack
    }

    fn enter(
        &self,
        m: &mut Machine,
        _from: &CompartmentCtx,
        to: &CompartmentCtx,
        _arg_bytes: u64,
    ) -> Result<()> {
        self.switch_to(m, to)
    }

    fn exit(
        &self,
        m: &mut Machine,
        _callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        _ret_bytes: u64,
    ) -> Result<()> {
        self.switch_to(m, caller)
    }

    fn enter_nth(
        &self,
        m: &mut Machine,
        _from: &CompartmentCtx,
        to: &CompartmentCtx,
        _arg_bytes: u64,
        _idx: usize,
    ) -> Result<()> {
        self.switch_to_fused(m, to)
    }

    fn exit_nth(
        &self,
        m: &mut Machine,
        _callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        _ret_bytes: u64,
        _idx: usize,
    ) -> Result<()> {
        self.switch_to_fused(m, caller)
    }
}

/// Hodor-style MPK gate: PKRU switch **plus** a stack switch; parameters
/// are copied to the target domain's stack and shared stack data is
/// placed on a shared heap.
#[derive(Debug, Clone, Copy)]
pub struct MpkSwitchedGate {
    token: GateToken,
}

impl MpkSwitchedGate {
    /// Creates the gate; `token` authorizes its `wrpkru` call sites.
    pub fn new(token: GateToken) -> Self {
        Self { token }
    }

    fn switch_to(&self, m: &mut Machine, to: &CompartmentCtx, copied_bytes: u64) -> Result<()> {
        m.charge(
            m.costs().pkru_guard_check
                + m.costs().mpk_gate_overhead
                + m.costs().stack_switch
                + m.costs().copy_cost(copied_bytes),
        );
        m.wrpkru(to.vcpu, to.pkru, Some(self.token))
    }
}

impl Gate for MpkSwitchedGate {
    fn mechanism(&self) -> GateMechanism {
        GateMechanism::MpkSwitchedStack
    }

    fn enter(
        &self,
        m: &mut Machine,
        _from: &CompartmentCtx,
        to: &CompartmentCtx,
        arg_bytes: u64,
    ) -> Result<()> {
        // Parameters are copied to the target domain stack.
        self.switch_to(m, to, arg_bytes)
    }

    fn exit(
        &self,
        m: &mut Machine,
        _callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        ret_bytes: u64,
    ) -> Result<()> {
        // The return value is copied back to the caller's stack.
        self.switch_to(m, caller, ret_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos::gate::CompartmentId;
    use flexos::spec::ShSet;
    use flexos_machine::{PageFlags, Pkru, ProtKey, VcpuId, VmId};

    fn ctx(id: u16, key: u8, m: &mut Machine) -> CompartmentCtx {
        let heap = m
            .alloc_region(VmId(0), 4096, ProtKey(key), PageFlags::RW)
            .unwrap();
        CompartmentCtx {
            id: CompartmentId(id),
            name: format!("c{id}"),
            vm: VmId(0),
            vcpu: VcpuId(0),
            pkru: Pkru::deny_all_except(&[ProtKey(0), ProtKey(key)], &[]),
            keys: vec![ProtKey(key)],
            sh: ShSet::none(),
            heap_base: heap,
            heap_size: 4096,
        }
    }

    #[test]
    fn shared_gate_switches_pkru_and_charges_one_way_cost() {
        let mut m = Machine::with_defaults();
        let a = ctx(0, 1, &mut m);
        let b = ctx(1, 2, &mut m);
        let gate = MpkSharedGate::new(m.gate_token());
        let c0 = m.clock().cycles();
        gate.enter(&mut m, &a, &b, 64).unwrap();
        assert_eq!(m.clock().cycles() - c0, m.costs().mpk_shared_gate());
        assert_eq!(m.rdpkru(VcpuId(0)), b.pkru);
        gate.exit(&mut m, &b, &a, 8).unwrap();
        assert_eq!(m.rdpkru(VcpuId(0)), a.pkru);
    }

    #[test]
    fn switched_gate_charges_stack_switch_and_arg_copy() {
        let mut m = Machine::with_defaults();
        let a = ctx(0, 1, &mut m);
        let b = ctx(1, 2, &mut m);
        let gate = MpkSwitchedGate::new(m.gate_token());
        let c0 = m.clock().cycles();
        gate.enter(&mut m, &a, &b, 128).unwrap();
        let charged = m.clock().cycles() - c0;
        assert_eq!(
            charged,
            m.costs().mpk_switched_gate() + m.costs().copy_cost(128)
        );
        assert!(charged > m.costs().mpk_shared_gate());
    }

    /// MPK gates have no doorbell to defer behind: an async ring flush
    /// completes every descriptor *inline* — each CQE is posted the
    /// moment its crossing returns, and the PKRU is already back in the
    /// submitter's domain when the flush hands control to the between
    /// hook. This is the uniform-API half of the ring contract (VM RPC
    /// coalesces doorbells instead; the caller code is identical).
    #[test]
    fn async_ring_flush_completes_inline_over_mpk() {
        use flexos::gate::{GateRuntime, Sqe};
        use std::sync::Arc;

        let mut m = Machine::with_defaults();
        let a = ctx(0, 1, &mut m);
        let b = ctx(1, 2, &mut m);
        let caller_pkru = a.pkru;
        let mut rt = GateRuntime::new(
            vec![a, b],
            Arc::new(MpkSharedGate::new(m.gate_token())),
            CompartmentId(0),
        );
        for i in 0..3u64 {
            rt.submit(CompartmentId(1), Sqe::new(16, 8, i)).unwrap();
        }
        let posted = rt
            .flush_async_until(
                &mut m,
                CompartmentId(1),
                |m, _rt, sqe| {
                    m.charge(2);
                    Ok(sqe.user_data as i64 + 100)
                },
                |m, _rt, _sqe, res| {
                    // Inline delivery: by the time the between hook
                    // runs, this descriptor's crossing has fully
                    // retired — result in hand, PKRU already switched
                    // back to the submitter's domain.
                    assert!(res >= 100);
                    assert_eq!(m.rdpkru(VcpuId(0)), caller_pkru);
                    Ok(true)
                },
            )
            .unwrap();
        assert_eq!(posted, 3);
        for i in 0..3u64 {
            let cqe = rt.reap(CompartmentId(1)).unwrap();
            assert_eq!((cqe.user_data, cqe.res), (i, i as i64 + 100));
        }
    }

    #[test]
    fn entered_compartment_cannot_touch_foreign_heap() {
        let mut m = Machine::with_defaults();
        let a = ctx(0, 1, &mut m);
        let b = ctx(1, 2, &mut m);
        let gate = MpkSharedGate::new(m.gate_token());
        gate.enter(&mut m, &a, &b, 0).unwrap();
        // Inside compartment b, heap of a (key 1) is unreachable.
        assert!(m.write(VcpuId(0), a.heap_base, b"attack").is_err());
        // Its own heap works.
        m.write(VcpuId(0), b.heap_base, b"fine").unwrap();
    }

    #[test]
    fn forged_gate_without_valid_token_is_rejected() {
        let mut m = Machine::with_defaults();
        let a = ctx(0, 1, &mut m);
        let b = ctx(1, 2, &mut m);
        // A gate built with another machine's token is useless here:
        // tokens are per-image (per vetted binary).
        let stolen = Machine::with_defaults().gate_token();
        let forged = MpkSharedGate::new(stolen);
        let err = forged.enter(&mut m, &a, &b, 0).unwrap_err();
        assert!(matches!(
            err,
            flexos_machine::Fault::UnauthorizedPkruWrite { .. }
        ));
        // Direct wrpkru without any token fails too (PKU-pitfalls defense).
        let err = m.wrpkru(VcpuId(0), b.pkru, None).unwrap_err();
        assert!(matches!(
            err,
            flexos_machine::Fault::UnauthorizedPkruWrite { .. }
        ));
    }
}
