//! # flexos-backends — isolation backends and image instantiation
//!
//! The concrete gate implementations of the paper's §3 prototype:
//!
//! * [`mpk::MpkSharedGate`] — ERIM-style: PKRU switch, shared stacks;
//! * [`mpk::MpkSwitchedGate`] — Hodor-style: PKRU switch + per-compartment
//!   stack switch with parameter copying;
//! * [`vmrpc::VmRpcGate`] — one VM per compartment, RPC over inter-VM
//!   notifications with a shared window mapped at identical addresses;
//!
//! plus [`boot::instantiate`], which turns a validated
//! [`ImagePlan`](flexos::build::ImagePlan) into a booted
//! [`boot::BootImage`]: protection domains created, heaps wired
//! (global or per-compartment), shared window mapped, gate installed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot;
pub mod cheri;
pub mod migrate;
pub mod mpk;
pub mod vmrpc;

pub use boot::{
    instantiate, instantiate_migratable, instantiate_migratable_with, instantiate_with, BootImage,
    BootOptions,
};
pub use cheri::CheriGate;
pub use migrate::{ensure_rpc_base, migrate_all, migrate_pair, prepare_pair_migration};
pub use mpk::{MpkSharedGate, MpkSwitchedGate};
pub use vmrpc::VmRpcGate;
