//! The CHERI capability backend (heterogeneous-hardware extension).
//!
//! The paper motivates FlexOS precisely with this scenario: "computer
//! hardware is becoming heterogeneous and certain primitives are
//! hardware-dependent (e.g. Memory Protection Keys)" — with CHERI
//! \[55\] the second example. A FlexOS image should be able to retarget
//! from MPK gates to capability gates *without touching the OS code*;
//! this backend makes `BackendChoice::Cheri` exactly such a drop-in.
//!
//! Model: each compartment's *capability reach* is the set of memory it
//! holds capabilities for (its own domain + the shared region); a gate
//! crossing is a sealed-capability invoke (`CSeal`/`CInvoke`) that
//! atomically swaps the executing reach. The simulation reuses the
//! machine's per-page tags to represent reachability — a compartment's
//! permitted tag set equals the span of its capabilities — so stray
//! pointers into foreign compartments fault exactly as unforgeable
//! capabilities dictate. Per-access capability checks (tag+bounds) are
//! nearly free in hardware (`cap_check`); the crossing costs
//! `cheri_gate` per direction — cheaper than MPK (no PKRU
//! serialization), far cheaper than a VM exit.

use flexos::gate::{CompartmentCtx, Gate, GateMechanism};
use flexos_machine::cap::{CapPerms, Capability, OType};
use flexos_machine::{GateToken, Machine, Result};

/// The sealed-capability gate.
#[derive(Debug, Clone, Copy)]
pub struct CheriGate {
    token: GateToken,
}

impl CheriGate {
    /// Creates the gate; `token` authorizes the reach switch (the
    /// analogue of holding the sealed domain-transition capability).
    pub fn new(token: GateToken) -> Self {
        Self { token }
    }

    /// Builds the sealed entry capability for a compartment (what a
    /// caller holds: opaque until invoked).
    pub fn entry_capability(ctx: &CompartmentCtx) -> Result<Capability> {
        Capability::root(ctx.heap_base, ctx.heap_size)
            .derive(0, ctx.heap_size, CapPerms::RW)?
            .seal(OType(u32::from(ctx.id.0)))
    }

    fn switch_to(&self, m: &mut Machine, to: &CompartmentCtx) -> Result<()> {
        // The CInvoke: unseal the target's entry capability (checked),
        // then install its reach. Charged as one domain transition; the
        // underlying register write is covered by the same budget.
        let sealed = Self::entry_capability(to)?;
        let _unsealed = sealed.unseal(OType(u32::from(to.id.0)))?;
        let gate_cost = m.costs().cheri_gate.saturating_sub(m.costs().wrpkru);
        m.charge(gate_cost);
        // Reach switch, modelled on the page tags (see module docs).
        m.wrpkru(to.vcpu, to.pkru, Some(self.token))
    }
}

impl Gate for CheriGate {
    fn mechanism(&self) -> GateMechanism {
        GateMechanism::Cheri
    }

    fn enter(
        &self,
        m: &mut Machine,
        _from: &CompartmentCtx,
        to: &CompartmentCtx,
        _arg_bytes: u64,
    ) -> Result<()> {
        // Arguments are passed *by capability* (no copy): the caller
        // derives a bounded capability over the argument buffer and the
        // callee uses it directly — one of CHERI's selling points.
        self.switch_to(m, to)
    }

    fn exit(
        &self,
        m: &mut Machine,
        _callee: &CompartmentCtx,
        caller: &CompartmentCtx,
        _ret_bytes: u64,
    ) -> Result<()> {
        self.switch_to(m, caller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos::gate::CompartmentId;
    use flexos::spec::ShSet;
    use flexos_machine::{PageFlags, Pkru, ProtKey, VcpuId, VmId};

    fn ctx(id: u16, key: u8, m: &mut Machine) -> CompartmentCtx {
        let heap = m
            .alloc_region(VmId(0), 8192, ProtKey(key), PageFlags::RW)
            .unwrap();
        CompartmentCtx {
            id: CompartmentId(id),
            name: format!("c{id}"),
            vm: VmId(0),
            vcpu: VcpuId(0),
            pkru: Pkru::deny_all_except(&[ProtKey(0), ProtKey(key)], &[]),
            keys: vec![ProtKey(key)],
            sh: ShSet::none(),
            heap_base: heap,
            heap_size: 8192,
        }
    }

    #[test]
    fn crossing_costs_the_cheri_budget() {
        let mut m = Machine::with_defaults();
        let a = ctx(0, 1, &mut m);
        let b = ctx(1, 2, &mut m);
        let gate = CheriGate::new(m.gate_token());
        let t0 = m.clock().cycles();
        gate.enter(&mut m, &a, &b, 64).unwrap();
        assert_eq!(m.clock().cycles() - t0, m.costs().cheri_gate);
        // Cheaper than an MPK crossing, far cheaper than VM RPC.
        assert!(m.costs().cheri_gate < m.costs().mpk_shared_gate());
        assert!(m.costs().cheri_gate * 10 < m.costs().vm_rpc_gate());
    }

    #[test]
    fn reach_is_enforced_after_the_crossing() {
        let mut m = Machine::with_defaults();
        let a = ctx(0, 1, &mut m);
        let b = ctx(1, 2, &mut m);
        let gate = CheriGate::new(m.gate_token());
        gate.enter(&mut m, &a, &b, 0).unwrap();
        // Inside b's reach, a's heap is unreachable.
        assert!(m.write(VcpuId(0), a.heap_base, b"stray").is_err());
        m.write(VcpuId(0), b.heap_base, b"own").unwrap();
    }

    #[test]
    fn entry_capabilities_are_sealed_and_compartment_typed() {
        let mut m = Machine::with_defaults();
        let b = ctx(1, 2, &mut m);
        let sealed = CheriGate::entry_capability(&b).unwrap();
        assert!(sealed.is_sealed());
        // Cannot dereference or unseal with the wrong compartment type.
        assert!(sealed.check_access(0, 8, false).is_err());
        assert!(sealed.unseal(OType(0)).is_err());
        assert!(sealed.unseal(OType(1)).is_ok());
    }

    #[test]
    fn argument_capabilities_bound_what_the_callee_may_touch() {
        let mut m = Machine::with_defaults();
        let a = ctx(0, 1, &mut m);
        // The caller derives a 64-byte RO view of its buffer for the callee.
        let arg = Capability::root(a.heap_base, a.heap_size)
            .derive(128, 64, CapPerms::RO)
            .unwrap();
        let mut buf = [0u8; 16];
        m.read_via_cap(VcpuId(0), &arg, 0, &mut buf).unwrap();
        // Out of bounds / wrong permission through the capability: caught
        // even though the underlying pages would allow it.
        assert!(m.read_via_cap(VcpuId(0), &arg, 60, &mut buf).is_err());
        assert!(m.write_via_cap(VcpuId(0), &arg, 0, b"x").is_err());
    }
}
