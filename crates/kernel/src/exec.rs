//! The cooperative executor: drives tasks over a pluggable scheduler.
//!
//! Simulated threads are state machines ([`Task`]): each `step` runs one
//! scheduling quantum and reports whether the thread yielded, blocked on a
//! wait channel, or finished. The executor pulls the next ready thread
//! from the configured [`RunQueue`] (plain or verified scheduler), charges
//! the scheduler's context-switch cost, and — through the [`KernelHal`] —
//! restores the incoming thread's compartment protection view (the saved
//! PKRU under MPK: "the scheduler holds the value of the PKRU for threads
//! that are not currently running", §3).

use crate::sched::{RunQueue, ThreadId};
use crate::sync::WaitChannel;
use flexos::gate::CompartmentId;
use flexos_machine::{Machine, Result};
use flexos_trace::{SchedTrace, SpanKind};
use std::collections::BTreeMap;

/// What a task reports after one scheduling quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Cooperatively yield; run me again later.
    Yield,
    /// Block until the channel is woken.
    Block(WaitChannel),
    /// The thread has finished.
    Done,
}

/// A simulated thread body, generic over the OS context `C` the apps
/// crate assembles (machine + gates + stacks + services).
pub trait Task<C> {
    /// Runs one quantum. The executor passes the thread's id so tasks can
    /// register as semaphore waiters.
    fn step(&mut self, ctx: &mut C, tid: ThreadId) -> Result<Step>;
}

impl<C, F> Task<C> for F
where
    F: FnMut(&mut C, ThreadId) -> Result<Step>,
{
    fn step(&mut self, ctx: &mut C, tid: ThreadId) -> Result<Step> {
        self(ctx, tid)
    }
}

/// Services the executor needs from the OS context.
pub trait KernelHal {
    /// The simulated machine (for cycle charging).
    fn machine_mut(&mut self) -> &mut Machine;

    /// Restores the protection view of `compartment` after a context
    /// switch (PKRU reload through the gate runtime under MPK).
    fn resume_compartment(&mut self, compartment: CompartmentId) -> Result<()>;

    /// Drains the thread-ids that became runnable since the last step
    /// (semaphore `up`s performed by tasks).
    fn drain_wakes(&mut self) -> Vec<ThreadId>;
}

struct ThreadSlot<C> {
    compartment: CompartmentId,
    task: Option<Box<dyn Task<C>>>,
    blocked_on: Option<WaitChannel>,
}

/// Outcome of an executor run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecSummary {
    /// Quanta executed.
    pub steps: u64,
    /// Context switches performed (thread handovers).
    pub switches: u64,
    /// Threads still blocked when the run ended.
    pub blocked: usize,
    /// Threads that ran to completion.
    pub completed: u64,
}

/// The cooperative executor.
pub struct Executor<C> {
    rq: Box<dyn RunQueue>,
    threads: BTreeMap<ThreadId, ThreadSlot<C>>,
    next_id: u32,
    last_running: Option<ThreadId>,
    summary: ExecSummary,
    trace: SchedTrace,
}

impl<C> std::fmt::Debug for Executor<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("scheduler", &self.rq.name())
            .field("threads", &self.threads.len())
            .field("summary", &self.summary)
            .finish()
    }
}

impl<C: KernelHal> Executor<C> {
    /// Creates an executor over the given scheduler implementation.
    pub fn new(rq: Box<dyn RunQueue>) -> Self {
        Self {
            rq,
            threads: BTreeMap::new(),
            next_id: 1,
            last_running: None,
            summary: ExecSummary::default(),
            trace: SchedTrace::new(),
        }
    }

    /// The scheduler's name (`"coop"` or `"verified"`).
    pub fn scheduler_name(&self) -> &'static str {
        self.rq.name()
    }

    /// Spawns a thread whose home compartment is `compartment`.
    pub fn spawn(
        &mut self,
        compartment: CompartmentId,
        task: Box<dyn Task<C>>,
    ) -> Result<ThreadId> {
        let tid = ThreadId(self.next_id);
        self.next_id += 1;
        self.rq.thread_add(tid)?;
        self.threads.insert(
            tid,
            ThreadSlot {
                compartment,
                task: Some(task),
                blocked_on: None,
            },
        );
        Ok(tid)
    }

    /// Number of live (not completed) threads.
    pub fn live_threads(&self) -> usize {
        self.threads.len()
    }

    /// Cumulative execution statistics.
    pub fn summary(&self) -> ExecSummary {
        self.summary
    }

    /// Scheduler telemetry: switches, run-queue depth, per-task cycles.
    pub fn trace(&self) -> &SchedTrace {
        &self.trace
    }

    fn apply_wakes(&mut self, ctx: &mut C) -> Result<()> {
        for tid in ctx.drain_wakes() {
            if let Some(slot) = self.threads.get_mut(&tid) {
                if slot.blocked_on.take().is_some() {
                    self.rq.wake(tid)?;
                }
            }
        }
        Ok(())
    }

    /// Runs until no thread is ready or `max_steps` quanta have executed.
    /// Returns the summary for this run; blocked threads remain parked
    /// (a subsequent wake can resume them in a later `run` call).
    pub fn run(&mut self, ctx: &mut C, max_steps: u64) -> Result<ExecSummary> {
        let run_start = self.summary;
        for _ in 0..max_steps {
            self.apply_wakes(ctx)?;
            let Some(tid) = self.rq.pick_next() else {
                break;
            };
            let depth = self.rq.ready_len();
            let slot = self.threads.get_mut(&tid).expect("scheduled thread exists");

            // Context switch: cost + compartment protection restore.
            if self.last_running != Some(tid) {
                let t0 = ctx.machine_mut().clock().cycles();
                let cost = self.rq.switch_cost(ctx.machine_mut().costs());
                ctx.machine_mut().charge(cost);
                ctx.resume_compartment(slot.compartment)?;
                self.summary.switches += 1;
                let t1 = ctx.machine_mut().clock().cycles();
                self.trace.record_switch(t1, tid.0);
                // Span probe: the switch window (cost charge + PKRU
                // restore), attributed to the incoming thread and its
                // compartment. Shard 0: the switch sequence is part of
                // the canonical interleave, identical at any `--vcpus`.
                ctx.machine_mut().span_trace_mut().record(
                    0,
                    SpanKind::Sched,
                    "ctx-switch",
                    tid.0 as u16,
                    slot.compartment.0,
                    t0,
                    t1,
                );
                self.last_running = Some(tid);
            }

            // Run one quantum with the task temporarily taken out so the
            // task can borrow the executor-free context.
            let mut task = slot.task.take().expect("task present while scheduled");
            let quantum_start = ctx.machine_mut().clock().cycles();
            let step = task.step(ctx, tid);
            let run_cycles = ctx.machine_mut().clock().cycles() - quantum_start;
            self.trace.record_step(tid.0, run_cycles, depth);
            let slot = self.threads.get_mut(&tid).expect("still present");
            slot.task = Some(task);
            self.summary.steps += 1;

            match step? {
                Step::Yield => self.rq.yield_back(tid)?,
                Step::Block(ch) => {
                    slot.blocked_on = Some(ch);
                    self.rq.block(tid)?;
                }
                Step::Done => {
                    self.rq.block(tid)?; // take it off the queue…
                    self.rq.thread_rm(tid)?; // …and forget it
                    self.threads.remove(&tid);
                    self.summary.completed += 1;
                    self.last_running = None;
                }
            }
        }
        // Wakes produced by the final quantum still count.
        self.apply_wakes(ctx)?;
        self.summary.blocked = self
            .threads
            .values()
            .filter(|s| s.blocked_on.is_some())
            .count();
        Ok(ExecSummary {
            steps: self.summary.steps - run_start.steps,
            switches: self.summary.switches - run_start.switches,
            blocked: self.summary.blocked,
            completed: self.summary.completed - run_start.completed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{CoopScheduler, VerifiedScheduler};
    use std::collections::VecDeque;

    /// Minimal HAL for executor tests.
    struct TestCtx {
        machine: Machine,
        wakes: VecDeque<ThreadId>,
        resumed: Vec<CompartmentId>,
        counter: u64,
    }

    impl TestCtx {
        fn new() -> Self {
            Self {
                machine: Machine::with_defaults(),
                wakes: VecDeque::new(),
                resumed: Vec::new(),
                counter: 0,
            }
        }
    }

    impl KernelHal for TestCtx {
        fn machine_mut(&mut self) -> &mut Machine {
            &mut self.machine
        }
        fn resume_compartment(&mut self, c: CompartmentId) -> Result<()> {
            self.resumed.push(c);
            Ok(())
        }
        fn drain_wakes(&mut self) -> Vec<ThreadId> {
            self.wakes.drain(..).collect()
        }
    }

    fn counting_task(quanta: u64) -> Box<dyn Task<TestCtx>> {
        let mut left = quanta;
        Box::new(move |ctx: &mut TestCtx, _tid| {
            ctx.counter += 1;
            left -= 1;
            Ok(if left == 0 { Step::Done } else { Step::Yield })
        })
    }

    #[test]
    fn tasks_run_to_completion() {
        let mut ctx = TestCtx::new();
        let mut ex = Executor::new(Box::new(CoopScheduler::new()));
        ex.spawn(CompartmentId(0), counting_task(3)).unwrap();
        ex.spawn(CompartmentId(0), counting_task(2)).unwrap();
        let s = ex.run(&mut ctx, 100).unwrap();
        assert_eq!(s.completed, 2);
        assert_eq!(ctx.counter, 5);
        assert_eq!(ex.live_threads(), 0);
    }

    #[test]
    fn blocked_threads_wait_for_wakes() {
        let mut ctx = TestCtx::new();
        let mut ex = Executor::new(Box::new(CoopScheduler::new()));
        let mut first = true;
        let blocker = Box::new(move |ctx: &mut TestCtx, _tid| {
            if first {
                first = false;
                Ok(Step::Block(WaitChannel(7)))
            } else {
                ctx.counter += 100;
                Ok(Step::Done)
            }
        });
        let tid = ex.spawn(CompartmentId(0), blocker).unwrap();
        let s = ex.run(&mut ctx, 100).unwrap();
        assert_eq!(s.blocked, 1);
        assert_eq!(ctx.counter, 0);
        // Wake it via the HAL and run again.
        ctx.wakes.push_back(tid);
        let s = ex.run(&mut ctx, 100).unwrap();
        assert_eq!(s.completed, 1);
        assert_eq!(ctx.counter, 100);
    }

    #[test]
    fn context_switches_charge_scheduler_cost() {
        let mut ctx = TestCtx::new();
        let mut ex = Executor::new(Box::new(CoopScheduler::new()));
        ex.spawn(CompartmentId(0), counting_task(2)).unwrap();
        ex.spawn(CompartmentId(0), counting_task(2)).unwrap();
        let before = ctx.machine.clock().cycles();
        let s = ex.run(&mut ctx, 100).unwrap();
        let charged = ctx.machine.clock().cycles() - before;
        // Two threads ping-pong: every quantum is a switch.
        assert_eq!(s.switches, 4);
        assert_eq!(charged, 4 * ctx.machine.costs().ctx_switch);
    }

    #[test]
    fn verified_scheduler_charges_more_per_switch() {
        let run_with = |rq: Box<dyn RunQueue>| {
            let mut ctx = TestCtx::new();
            let mut ex = Executor::new(rq);
            ex.spawn(CompartmentId(0), counting_task(4)).unwrap();
            ex.spawn(CompartmentId(0), counting_task(4)).unwrap();
            ex.run(&mut ctx, 100).unwrap();
            ctx.machine.clock().cycles()
        };
        let coop = run_with(Box::new(CoopScheduler::new()));
        let verified = run_with(Box::new(VerifiedScheduler::new()));
        assert!(verified > coop);
        // Ratio is bounded by the per-switch ratio (≈2.85).
        assert!(verified < coop * 3);
    }

    #[test]
    fn resume_restores_the_thread_compartment() {
        let mut ctx = TestCtx::new();
        let mut ex = Executor::new(Box::new(CoopScheduler::new()));
        ex.spawn(CompartmentId(3), counting_task(1)).unwrap();
        ex.run(&mut ctx, 10).unwrap();
        assert_eq!(ctx.resumed, vec![CompartmentId(3)]);
    }

    #[test]
    fn same_thread_consecutive_quanta_do_not_switch() {
        let mut ctx = TestCtx::new();
        let mut ex = Executor::new(Box::new(CoopScheduler::new()));
        ex.spawn(CompartmentId(0), counting_task(5)).unwrap();
        let s = ex.run(&mut ctx, 100).unwrap();
        // One thread alone: exactly one "switch" (the initial dispatch).
        assert_eq!(s.switches, 1);
        assert_eq!(s.steps, 5);
    }

    #[test]
    fn max_steps_bounds_execution() {
        let mut ctx = TestCtx::new();
        let mut ex = Executor::new(Box::new(CoopScheduler::new()));
        ex.spawn(CompartmentId(0), counting_task(1000)).unwrap();
        let s = ex.run(&mut ctx, 10).unwrap();
        assert_eq!(s.steps, 10);
        assert_eq!(ex.live_threads(), 1);
    }
}
