//! Cooperative per-connection tasks for the serving tier.
//!
//! [`CoExecutor`] is a deliberately small executor in the sabios
//! `co_task` mold: a slab of tasks plus a FIFO run queue of woken task
//! ids. A serving tier spawns one task per connection; readiness events
//! from the net layer's `EventQueue` (and CQEs reaped off the async gate
//! rings) translate into [`CoExecutor::wake`] calls, and
//! [`CoExecutor::run_until_idle`] steps exactly the woken tasks — the
//! executor-side half of the O(ready) contract (a poll touches ready
//! sockets, a scheduling round touches woken tasks; neither ever scans
//! the 10⁵ idle connections).
//!
//! Scheduling is deterministic by construction: the run queue is a
//! canonical FIFO, wakes are recorded in call order, and nothing here
//! reads host time or thread identity. In free-running SMP mode the
//! bench harness shards *connections* across executors (one
//! `CoExecutor` per host thread, stealing via
//! [`crate::smp::WorkStealQueue`]), while deterministic mode drives a
//! single executor on the canonical interleave — the same task code runs
//! in both, and the deterministic run is byte-identical at any
//! `--vcpus`.
//!
//! Unlike [`crate::exec::Executor`] (which owns threads and gate
//! crossings for whole compartment images), a `CoExecutor` is a plain
//! data structure parameterized over a context type `C`: the serving
//! tier passes its own world (machine, stack, shards) down to each task
//! step. That keeps the executor free of any borrow entanglement with
//! the OS layer.

use flexos_trace::ExecutorTrace;
use std::collections::VecDeque;

/// A handle to a spawned task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoTaskId(pub u32);

/// What a task step reports back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoPoll {
    /// The task parked itself; it runs again only after a wake.
    Pending,
    /// The task finished; its slot is recycled.
    Ready,
}

/// One cooperative task: stepped with the executor's context until it
/// reports [`CoPoll::Ready`].
pub trait CoTask<C> {
    /// Advances the task. `id` is the task's own handle (so it can
    /// register itself in wake maps).
    fn step(&mut self, ctx: &mut C, id: CoTaskId) -> CoPoll;
}

impl<C, F> CoTask<C> for F
where
    F: FnMut(&mut C, CoTaskId) -> CoPoll,
{
    fn step(&mut self, ctx: &mut C, id: CoTaskId) -> CoPoll {
        self(ctx, id)
    }
}

struct Slot<C> {
    task: Box<dyn CoTask<C>>,
    /// Queued in the run queue (coalesces duplicate wakes).
    queued: bool,
}

/// The cooperative executor: a slab of tasks and a FIFO of woken ids.
pub struct CoExecutor<C> {
    slots: Vec<Option<Slot<C>>>,
    free: Vec<u32>,
    run_queue: VecDeque<u32>,
    trace: ExecutorTrace,
}

impl<C> Default for CoExecutor<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> std::fmt::Debug for CoExecutor<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoExecutor")
            .field("tasks", &self.task_count())
            .field("runnable", &self.run_queue.len())
            .finish()
    }
}

impl<C> CoExecutor<C> {
    /// Creates an empty executor.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            run_queue: VecDeque::new(),
            trace: ExecutorTrace::new(),
        }
    }

    /// Spawns a task; it is immediately runnable (first step happens on
    /// the next [`CoExecutor::run_until_idle`]).
    pub fn spawn(&mut self, task: Box<dyn CoTask<C>>) -> CoTaskId {
        let slot = Slot { task, queued: true };
        let id = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.run_queue.push_back(id);
        self.trace.on_spawn();
        CoTaskId(id)
    }

    /// Wakes a parked task. Duplicate wakes coalesce; wakes for dead
    /// ids are ignored (a readiness event can race a task's exit).
    pub fn wake(&mut self, id: CoTaskId) {
        let Some(Some(slot)) = self.slots.get_mut(id.0 as usize) else {
            return;
        };
        if slot.queued {
            return;
        }
        slot.queued = true;
        self.run_queue.push_back(id.0);
        self.trace.on_wake();
    }

    /// Steps woken tasks in FIFO order until the run queue drains or
    /// `budget` steps were taken. Returns the number of steps.
    ///
    /// A task stepping [`CoPoll::Pending`] parks until its next wake; a
    /// task may wake *other* tasks from inside its step (via whatever
    /// wake plumbing the context carries) and those run in this same
    /// call, FIFO — exactly the deterministic interleave the serve CI
    /// job byte-compares across `--vcpus`.
    pub fn run_until_idle(&mut self, ctx: &mut C, budget: u64) -> u64 {
        let mut steps = 0;
        while steps < budget {
            let Some(i) = self.run_queue.pop_front() else {
                break;
            };
            let Some(slot) = self.slots.get_mut(i as usize).and_then(Option::as_mut) else {
                continue;
            };
            slot.queued = false;
            // Move the task out so the step can re-enter the executor's
            // tables through `ctx` without aliasing its own slot.
            let mut task = std::mem::replace(&mut slot.task, Box::new(NopTask));
            steps += 1;
            self.trace.on_run();
            match task.step(ctx, CoTaskId(i)) {
                CoPoll::Ready => {
                    self.slots[i as usize] = None;
                    self.free.push(i);
                }
                CoPoll::Pending => {
                    if let Some(slot) = self.slots.get_mut(i as usize).and_then(Option::as_mut) {
                        slot.task = task;
                    }
                }
            }
        }
        steps
    }

    /// Live task count.
    pub fn task_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Tasks currently queued to run.
    pub fn runnable(&self) -> usize {
        self.run_queue.len()
    }

    /// Whether nothing is queued.
    pub fn is_idle(&self) -> bool {
        self.run_queue.is_empty()
    }

    /// The executor's probe counters.
    pub fn trace(&self) -> &ExecutorTrace {
        &self.trace
    }

    /// Mutable probe access (the free-running harness folds steal
    /// counts in before aggregating shards).
    pub fn trace_mut(&mut self) -> &mut ExecutorTrace {
        &mut self.trace
    }
}

/// Placeholder parked in a slot while its real task is being stepped.
struct NopTask;

impl<C> CoTask<C> for NopTask {
    fn step(&mut self, _ctx: &mut C, _id: CoTaskId) -> CoPoll {
        CoPoll::Ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Ctx {
        log: Vec<(u32, u32)>,
        wakes: Vec<CoTaskId>,
    }

    fn counter_task(n: u32) -> Box<dyn CoTask<Ctx>> {
        let mut left = n;
        Box::new(move |ctx: &mut Ctx, id: CoTaskId| {
            ctx.log.push((id.0, left));
            if left == 0 {
                return CoPoll::Ready;
            }
            left -= 1;
            // Park; the driver re-wakes us.
            ctx.wakes.push(id);
            CoPoll::Pending
        })
    }

    fn drive(ex: &mut CoExecutor<Ctx>, ctx: &mut Ctx) -> u64 {
        let mut total = 0;
        loop {
            total += ex.run_until_idle(ctx, u64::MAX);
            let wakes = std::mem::take(&mut ctx.wakes);
            if wakes.is_empty() && ex.is_idle() {
                return total;
            }
            for id in wakes {
                ex.wake(id);
            }
        }
    }

    #[test]
    fn tasks_run_fifo_and_complete() {
        let mut ex = CoExecutor::new();
        let mut ctx = Ctx::default();
        let a = ex.spawn(counter_task(2));
        let b = ex.spawn(counter_task(1));
        assert_eq!((a.0, b.0), (0, 1));
        drive(&mut ex, &mut ctx);
        assert_eq!(ex.task_count(), 0);
        // FIFO interleave: a, b, a, b, a — byte-stable ordering.
        assert_eq!(ctx.log, vec![(0, 2), (1, 1), (0, 1), (1, 0), (0, 0)]);
    }

    #[test]
    fn duplicate_wakes_coalesce() {
        let mut ex = CoExecutor::new();
        let mut ctx = Ctx::default();
        let id = ex.spawn(counter_task(1));
        ex.run_until_idle(&mut ctx, u64::MAX);
        ctx.wakes.clear();
        ex.wake(id);
        ex.wake(id);
        ex.wake(id);
        assert_eq!(ex.runnable(), 1, "wakes did not coalesce");
        assert_eq!(ex.trace().wakeups(), 1);
    }

    #[test]
    fn wake_of_dead_task_is_ignored() {
        let mut ex = CoExecutor::new();
        let mut ctx = Ctx::default();
        let id = ex.spawn(counter_task(0));
        ex.run_until_idle(&mut ctx, u64::MAX);
        assert_eq!(ex.task_count(), 0);
        ex.wake(id);
        assert!(ex.is_idle());
    }

    #[test]
    fn slots_are_recycled() {
        let mut ex = CoExecutor::new();
        let mut ctx = Ctx::default();
        for _ in 0..3 {
            let id = ex.spawn(counter_task(0));
            assert_eq!(id.0, 0, "slot not recycled");
            ex.run_until_idle(&mut ctx, u64::MAX);
        }
        assert_eq!(ex.trace().spawned(), 3);
        assert_eq!(ex.trace().tasks_run(), 3);
    }

    #[test]
    fn budget_bounds_a_round() {
        let mut ex = CoExecutor::new();
        let mut ctx = Ctx::default();
        ex.spawn(counter_task(100));
        let steps = ex.run_until_idle(&mut ctx, 1);
        assert_eq!(steps, 1);
        assert_eq!(ex.task_count(), 1);
    }

    #[test]
    fn tasks_can_spawnlike_wake_each_other_within_a_round() {
        // b parks first; a's step wakes b through the context, and b
        // runs within the same run_until_idle call.
        struct W {
            wake_b: Option<CoTaskId>,
            order: Vec<&'static str>,
        }
        let mut ex: CoExecutor<W> = CoExecutor::new();
        let b = ex.spawn(Box::new(|ctx: &mut W, _id| {
            ctx.order.push("b");
            if ctx.order.len() > 1 {
                CoPoll::Ready
            } else {
                CoPoll::Pending
            }
        }));
        ex.spawn(Box::new(move |ctx: &mut W, _id| {
            ctx.order.push("a");
            ctx.wake_b = Some(b);
            CoPoll::Ready
        }));
        let mut ctx = W {
            wake_b: None,
            order: Vec::new(),
        };
        // First round: b runs (parks), a runs (requests b's wake).
        ex.run_until_idle(&mut ctx, u64::MAX);
        if let Some(id) = ctx.wake_b.take() {
            ex.wake(id);
        }
        ex.run_until_idle(&mut ctx, u64::MAX);
        assert_eq!(ctx.order, vec!["b", "a", "b"]);
        assert_eq!(ex.task_count(), 0);
    }
}
