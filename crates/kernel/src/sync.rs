//! Synchronization micro-library: semaphores, wait queues, mutexes.
//!
//! **Placement matters.** In the paper's Redis experiment, co-locating the
//! network stack and the scheduler did *not* recover performance because
//! "semaphores [are] implemented in another compartment (LibC)" (§4) —
//! every wait-queue operation still crossed a gate. In this reproduction
//! the same wiring is used: the network stack's wait queues call into the
//! semaphore service, and the apps crate routes those calls through the
//! gate runtime into the LibC compartment (see `flexos-apps::os`).
//!
//! The primitives here are pure run-queue-side data structures: blocking
//! is cooperative (a failed `try_down` enqueues the thread and the caller
//! returns [`Step::Block`](crate::exec::Step) from its task).

use crate::sched::ThreadId;
use std::collections::VecDeque;
use std::fmt;

/// A wait channel identifier: what a blocked thread is waiting on.
/// Semaphore `i` in the [`SemTable`] maps to channel `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WaitChannel(pub u64);

impl fmt::Display for WaitChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chan{}", self.0)
    }
}

/// A counting semaphore with a FIFO waiter queue.
#[derive(Debug, Default)]
pub struct Semaphore {
    count: i64,
    waiters: VecDeque<ThreadId>,
}

impl Semaphore {
    /// Creates a semaphore with an initial count.
    pub fn new(count: i64) -> Self {
        Self {
            count,
            waiters: VecDeque::new(),
        }
    }

    /// Attempts to decrement. On success returns `true`; otherwise the
    /// thread is enqueued as a waiter and the caller must block.
    pub fn try_down(&mut self, tid: ThreadId) -> bool {
        if self.count > 0 {
            self.count -= 1;
            true
        } else {
            if !self.waiters.contains(&tid) {
                self.waiters.push_back(tid);
            }
            false
        }
    }

    /// Increments; if a waiter exists, transfers the token to it and
    /// returns it (the caller wakes it).
    pub fn up(&mut self) -> Option<ThreadId> {
        match self.waiters.pop_front() {
            Some(t) => Some(t), // token handed directly to the waiter
            None => {
                self.count += 1;
                None
            }
        }
    }

    /// Removes a thread from the waiter queue (timeout/kill paths).
    pub fn cancel(&mut self, tid: ThreadId) -> bool {
        let before = self.waiters.len();
        self.waiters.retain(|&t| t != tid);
        before != self.waiters.len()
    }

    /// Current count.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// Number of blocked waiters.
    pub fn waiter_count(&self) -> usize {
        self.waiters.len()
    }
}

/// Identifier of a semaphore in a [`SemTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SemId(pub usize);

impl SemId {
    /// The wait channel blocked threads on this semaphore use.
    pub fn channel(self) -> WaitChannel {
        WaitChannel(self.0 as u64)
    }
}

/// The semaphore service (lives in the LibC micro-library).
#[derive(Debug, Default)]
pub struct SemTable {
    sems: Vec<Semaphore>,
    /// Total down/up operations (the bench harness reports crossings into
    /// LibC per request from this).
    pub ops: u64,
}

impl SemTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a semaphore with an initial count.
    pub fn create(&mut self, count: i64) -> SemId {
        self.sems.push(Semaphore::new(count));
        SemId(self.sems.len() - 1)
    }

    /// `try_down` on semaphore `id`.
    pub fn try_down(&mut self, id: SemId, tid: ThreadId) -> bool {
        self.ops += 1;
        self.sems[id.0].try_down(tid)
    }

    /// `up` on semaphore `id`; returns the thread to wake, if any.
    pub fn up(&mut self, id: SemId) -> Option<ThreadId> {
        self.ops += 1;
        self.sems[id.0].up()
    }

    /// Shared view of a semaphore.
    pub fn get(&self, id: SemId) -> &Semaphore {
        &self.sems[id.0]
    }

    /// Number of semaphores.
    pub fn len(&self) -> usize {
        self.sems.len()
    }

    /// Whether no semaphores exist.
    pub fn is_empty(&self) -> bool {
        self.sems.is_empty()
    }
}

/// A wait queue (condition-variable flavour): threads park until an event
/// wakes one or all.
#[derive(Debug, Default)]
pub struct WaitQueue {
    waiters: VecDeque<ThreadId>,
}

impl WaitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a thread (idempotent).
    pub fn wait(&mut self, tid: ThreadId) {
        if !self.waiters.contains(&tid) {
            self.waiters.push_back(tid);
        }
    }

    /// Wakes the oldest waiter.
    pub fn wake_one(&mut self) -> Option<ThreadId> {
        self.waiters.pop_front()
    }

    /// Wakes everyone.
    pub fn wake_all(&mut self) -> Vec<ThreadId> {
        self.waiters.drain(..).collect()
    }

    /// Number of parked threads.
    pub fn len(&self) -> usize {
        self.waiters.len()
    }

    /// Whether nobody waits.
    pub fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }
}

/// A mutex built over [`Semaphore`] (binary semaphore + owner tracking).
#[derive(Debug)]
pub struct Mutex {
    sem: Semaphore,
    owner: Option<ThreadId>,
}

impl Default for Mutex {
    fn default() -> Self {
        Self::new()
    }
}

impl Mutex {
    /// Creates an unlocked mutex.
    pub fn new() -> Self {
        Self {
            sem: Semaphore::new(1),
            owner: None,
        }
    }

    /// Attempts to take the lock; enqueues as waiter on failure.
    pub fn try_lock(&mut self, tid: ThreadId) -> bool {
        if self.sem.try_down(tid) {
            self.owner = Some(tid);
            true
        } else {
            false
        }
    }

    /// Releases the lock; returns the next owner to wake, if any.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not the current owner (lock-discipline bug in
    /// the caller).
    pub fn unlock(&mut self, tid: ThreadId) -> Option<ThreadId> {
        assert_eq!(self.owner, Some(tid), "unlock by non-owner");
        let next = self.sem.up();
        self.owner = next;
        next
    }

    /// The current owner.
    pub fn owner(&self) -> Option<ThreadId> {
        self.owner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const T3: ThreadId = ThreadId(3);

    #[test]
    fn semaphore_counts_and_blocks() {
        let mut s = Semaphore::new(2);
        assert!(s.try_down(T1));
        assert!(s.try_down(T2));
        assert!(!s.try_down(T3));
        assert_eq!(s.waiter_count(), 1);
        // up() transfers the token to the waiter, not the count.
        assert_eq!(s.up(), Some(T3));
        assert_eq!(s.count(), 0);
        // A further up with no waiters restores the count.
        assert_eq!(s.up(), None);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn semaphore_waiters_are_fifo() {
        let mut s = Semaphore::new(0);
        assert!(!s.try_down(T1));
        assert!(!s.try_down(T2));
        assert_eq!(s.up(), Some(T1));
        assert_eq!(s.up(), Some(T2));
    }

    #[test]
    fn duplicate_waiters_are_not_enqueued_twice() {
        let mut s = Semaphore::new(0);
        assert!(!s.try_down(T1));
        assert!(!s.try_down(T1));
        assert_eq!(s.waiter_count(), 1);
    }

    #[test]
    fn cancel_removes_a_waiter() {
        let mut s = Semaphore::new(0);
        s.try_down(T1);
        s.try_down(T2);
        assert!(s.cancel(T1));
        assert!(!s.cancel(T1));
        assert_eq!(s.up(), Some(T2));
    }

    #[test]
    fn sem_table_tracks_ops_for_crossing_accounting() {
        let mut t = SemTable::new();
        let id = t.create(1);
        assert!(t.try_down(id, T1));
        t.up(id);
        assert_eq!(t.ops, 2);
        assert_eq!(id.channel(), WaitChannel(0));
    }

    #[test]
    fn wait_queue_wake_one_and_all() {
        let mut q = WaitQueue::new();
        q.wait(T1);
        q.wait(T2);
        q.wait(T1); // idempotent
        assert_eq!(q.len(), 2);
        assert_eq!(q.wake_one(), Some(T1));
        q.wait(T3);
        assert_eq!(q.wake_all(), vec![T2, T3]);
        assert!(q.is_empty());
    }

    #[test]
    fn mutex_enforces_ownership_handoff() {
        let mut m = Mutex::new();
        assert!(m.try_lock(T1));
        assert!(!m.try_lock(T2));
        let next = m.unlock(T1);
        assert_eq!(next, Some(T2));
        assert_eq!(m.owner(), Some(T2));
        assert_eq!(m.unlock(T2), None);
        assert_eq!(m.owner(), None);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn mutex_unlock_by_non_owner_panics() {
        let mut m = Mutex::new();
        m.try_lock(T1);
        let _ = m.unlock(T2);
    }
}
