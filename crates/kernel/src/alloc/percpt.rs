//! Per-compartment allocator dispatch.
//!
//! "A key requirement for SH is the ability to have a separate memory
//! allocator per compartment: as many SH techniques instrument malloc,
//! using a single global allocator would result in the entire system
//! paying the cost of the instrumented allocator." (paper §3)
//!
//! [`HeapService`] is the kernel's malloc façade: in [`AllocMode::Global`]
//! mode every compartment shares allocator 0 (the paper's "global
//! allocator" Redis configuration); in [`AllocMode::PerCompartment`] mode
//! each compartment has its own (the "local allocator" configuration, and
//! a hard requirement of the VM backend). The hardening layer swaps in
//! instrumented allocators per compartment via [`HeapService::replace`].

use super::Allocator;
use flexos::gate::CompartmentId;
use flexos_machine::{Addr, Machine, Result};
use flexos_trace::AllocTrace;

/// Allocator topology of an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// One allocator shared by all compartments.
    Global,
    /// One allocator per compartment.
    PerCompartment,
}

/// The malloc/free service exposed to every micro-library.
#[derive(Debug)]
pub struct HeapService {
    mode: AllocMode,
    allocators: Vec<Box<dyn Allocator>>,
    trace: AllocTrace,
}

impl HeapService {
    /// A single global allocator serving every compartment.
    pub fn global(alloc: Box<dyn Allocator>) -> Self {
        Self {
            mode: AllocMode::Global,
            allocators: vec![alloc],
            trace: AllocTrace::new(),
        }
    }

    /// One allocator per compartment, indexed by [`CompartmentId`].
    ///
    /// # Panics
    ///
    /// Panics if `allocators` is empty.
    pub fn per_compartment(allocators: Vec<Box<dyn Allocator>>) -> Self {
        assert!(!allocators.is_empty(), "need at least one allocator");
        Self {
            mode: AllocMode::PerCompartment,
            allocators,
            trace: AllocTrace::new(),
        }
    }

    /// Per-compartment allocation telemetry (attributed to the requesting
    /// compartment even in global mode, which the shared allocator's own
    /// stats cannot do).
    pub fn trace(&self) -> &AllocTrace {
        &self.trace
    }

    /// The configured topology.
    pub fn mode(&self) -> AllocMode {
        self.mode
    }

    fn index(&self, c: CompartmentId) -> usize {
        match self.mode {
            AllocMode::Global => 0,
            AllocMode::PerCompartment => {
                let i = c.0 as usize;
                assert!(i < self.allocators.len(), "no allocator for {c}");
                i
            }
        }
    }

    /// Allocates from the allocator serving compartment `c`.
    pub fn alloc(
        &mut self,
        m: &mut Machine,
        c: CompartmentId,
        size: u64,
        align: u64,
    ) -> Result<Addr> {
        let i = self.index(c);
        match self.allocators[i].alloc(m, size, align) {
            Ok(a) => {
                self.trace.on_alloc(c.0, size);
                Ok(a)
            }
            Err(f) => {
                self.trace.on_fail(c.0, size, m.clock().cycles());
                Err(f)
            }
        }
    }

    /// Frees into the allocator serving compartment `c`.
    pub fn free(&mut self, m: &mut Machine, c: CompartmentId, addr: Addr) -> Result<()> {
        let i = self.index(c);
        let before = self.allocators[i].stats().live_bytes;
        self.allocators[i].free(m, addr)?;
        let freed = before.saturating_sub(self.allocators[i].stats().live_bytes);
        self.trace.on_free(c.0, freed);
        Ok(())
    }

    /// The allocator serving `c` (shared view).
    pub fn allocator_for(&self, c: CompartmentId) -> &dyn Allocator {
        self.allocators[self.index(c)].as_ref()
    }

    /// Replaces the allocator serving `c` (used by the hardening layer to
    /// install an instrumented allocator), returning the old one.
    ///
    /// In global mode this replaces the single shared allocator — which
    /// is exactly how the "entire system pays for instrumentation"
    /// configuration arises.
    pub fn replace(&mut self, c: CompartmentId, alloc: Box<dyn Allocator>) -> Box<dyn Allocator> {
        let i = self.index(c);
        std::mem::replace(&mut self.allocators[i], alloc)
    }

    /// Iterates over all allocators (reporting).
    pub fn allocators(&self) -> impl Iterator<Item = &dyn Allocator> {
        self.allocators.iter().map(|a| a.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::testutil::region;
    use crate::alloc::FreeListAllocator;

    fn two_heaps() -> (Machine, HeapService) {
        let (mut m, base0) = region(8192);
        let base1 = m
            .alloc_region(
                flexos_machine::VmId(0),
                8192,
                flexos_machine::ProtKey(2),
                flexos_machine::PageFlags::RW,
            )
            .unwrap();
        let svc = HeapService::per_compartment(vec![
            Box::new(FreeListAllocator::new(base0, 8192)),
            Box::new(FreeListAllocator::new(base1, 8192)),
        ]);
        (m, svc)
    }

    #[test]
    fn per_compartment_mode_keeps_heaps_disjoint() {
        let (mut m, mut svc) = two_heaps();
        let a = svc.alloc(&mut m, CompartmentId(0), 64, 8).unwrap();
        let b = svc.alloc(&mut m, CompartmentId(1), 64, 8).unwrap();
        let (r0, l0) = svc.allocator_for(CompartmentId(0)).region();
        let (r1, _) = svc.allocator_for(CompartmentId(1)).region();
        assert!(a.0 >= r0.0 && a.0 < r0.0 + l0);
        assert!(b.0 >= r1.0);
        assert_ne!(r0, r1);
    }

    #[test]
    fn global_mode_shares_one_allocator() {
        let (mut m, base) = region(8192);
        let mut svc = HeapService::global(Box::new(FreeListAllocator::new(base, 8192)));
        let a = svc.alloc(&mut m, CompartmentId(0), 64, 8).unwrap();
        let b = svc.alloc(&mut m, CompartmentId(5), 64, 8).unwrap();
        // Both land in the same region; stats accumulate on one allocator.
        assert_eq!(svc.allocator_for(CompartmentId(3)).stats().allocs, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn free_routes_to_the_owning_allocator() {
        let (mut m, mut svc) = two_heaps();
        let a = svc.alloc(&mut m, CompartmentId(1), 64, 8).unwrap();
        svc.free(&mut m, CompartmentId(1), a).unwrap();
        assert_eq!(svc.allocator_for(CompartmentId(1)).stats().live_bytes, 0);
        // Freeing into the wrong compartment's allocator is caught.
        let b = svc.alloc(&mut m, CompartmentId(0), 64, 8).unwrap();
        assert!(svc.free(&mut m, CompartmentId(1), b).is_err());
    }

    #[test]
    fn replace_swaps_in_a_new_allocator() {
        let (mut m, mut svc) = two_heaps();
        let (base1, len1) = svc.allocator_for(CompartmentId(1)).region();
        let old = svc.replace(
            CompartmentId(1),
            Box::new(crate::alloc::BumpAllocator::new(base1, len1)),
        );
        assert_eq!(old.name(), "freelist");
        assert_eq!(svc.allocator_for(CompartmentId(1)).name(), "bump");
        svc.alloc(&mut m, CompartmentId(1), 32, 8).unwrap();
    }
}
