//! Binary-buddy allocator (Unikraft ships `ukallocbbuddy`; the VM backend
//! instantiates one per compartment).

use super::{heap_exhausted, AllocStats, Allocator};
use flexos_machine::{Addr, Fault, Machine, Result};
use std::collections::{BTreeMap, BTreeSet};

/// Smallest block order (2^5 = 32 bytes).
const MIN_ORDER: u32 = 5;

/// A binary-buddy allocator over a power-of-two region.
#[derive(Debug)]
pub struct BuddyAllocator {
    base: Addr,
    len: u64,
    max_order: u32,
    /// Free blocks per order: offsets.
    free: Vec<BTreeSet<u64>>,
    /// Live allocations: offset → (order, requested size).
    live: BTreeMap<u64, (u32, u64)>,
    stats: AllocStats,
}

impl BuddyAllocator {
    /// Creates a buddy allocator; `len` must be a power of two ≥ 32.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a power of two or is below the minimum
    /// block size.
    pub fn new(base: Addr, len: u64) -> Self {
        assert!(len.is_power_of_two(), "buddy region must be a power of two");
        assert!(len >= 1 << MIN_ORDER, "buddy region too small");
        let max_order = len.trailing_zeros();
        let mut free: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); (max_order + 1) as usize];
        free[max_order as usize].insert(0);
        Self {
            base,
            len,
            max_order,
            free,
            live: BTreeMap::new(),
            stats: AllocStats::default(),
        }
    }

    fn order_for(&self, size: u64) -> u32 {
        let needed = size.max(1).next_power_of_two().trailing_zeros();
        needed.max(MIN_ORDER)
    }

    /// Total free bytes across all orders.
    pub fn free_bytes(&self) -> u64 {
        self.free
            .iter()
            .enumerate()
            .map(|(o, set)| (set.len() as u64) << o)
            .sum()
    }

    /// Checks the buddy invariants: blocks aligned to their order, no
    /// buddy pair both free (they would have been merged).
    pub fn audit(&self) -> bool {
        for (order, set) in self.free.iter().enumerate() {
            for &off in set {
                if off % (1u64 << order) != 0 {
                    return false;
                }
                let buddy = off ^ (1u64 << order);
                if set.contains(&buddy) && buddy != off {
                    return false; // unmerged buddies
                }
            }
        }
        true
    }
}

impl Allocator for BuddyAllocator {
    fn alloc(&mut self, m: &mut Machine, size: u64, align: u64) -> Result<Addr> {
        m.charge(m.costs().alloc_op);
        // Buddy blocks are naturally aligned to their size; bump the order
        // until alignment is satisfied.
        let mut order = self.order_for(size.max(align));
        if order > self.max_order {
            return Err(heap_exhausted(size));
        }
        // Find the smallest order ≥ `order` with a free block.
        let mut found = None;
        for o in order..=self.max_order {
            if let Some(&off) = self.free[o as usize].iter().next() {
                found = Some((o, off));
                break;
            }
        }
        let Some((mut o, off)) = found else {
            return Err(heap_exhausted(size));
        };
        self.free[o as usize].remove(&off);
        // Split down to the target order.
        while o > order {
            o -= 1;
            let buddy = off + (1u64 << o);
            self.free[o as usize].insert(buddy);
        }
        order = o;
        self.live.insert(off, (order, size));
        self.stats.on_alloc(size);
        Ok(Addr(self.base.0 + off))
    }

    fn free(&mut self, m: &mut Machine, addr: Addr) -> Result<()> {
        m.charge(m.costs().alloc_op);
        let mut off = addr.0.wrapping_sub(self.base.0);
        let Some((mut order, size)) = self.live.remove(&off) else {
            return Err(Fault::HardeningAbort {
                mechanism: "alloc",
                reason: format!("invalid or double free of {addr} (buddy)"),
            });
        };
        self.stats.on_free(size);
        // Merge with the buddy as long as it is free.
        while order < self.max_order {
            let buddy = off ^ (1u64 << order);
            if !self.free[order as usize].remove(&buddy) {
                break;
            }
            off = off.min(buddy);
            order += 1;
        }
        self.free[order as usize].insert(off);
        Ok(())
    }

    fn size_of(&self, addr: Addr) -> Option<u64> {
        self.live
            .get(&addr.0.wrapping_sub(self.base.0))
            .map(|&(_, size)| size)
    }

    fn region(&self) -> (Addr, u64) {
        (self.base, self.len)
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "buddy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::testutil::{check_no_overlap, region};

    #[test]
    fn blocks_are_power_of_two_aligned() {
        let (mut m, base) = region(4096);
        let mut a = BuddyAllocator::new(base, 4096);
        let x = a.alloc(&mut m, 100, 8).unwrap(); // order 7 (128)
        assert_eq!((x.0 - base.0) % 128, 0);
    }

    #[test]
    fn split_and_merge_round_trip() {
        let (mut m, base) = region(4096);
        let mut a = BuddyAllocator::new(base, 4096);
        let before = a.free_bytes();
        let blocks: Vec<_> = (0..4).map(|_| a.alloc(&mut m, 1000, 8).unwrap()).collect();
        assert!(a.alloc(&mut m, 1000, 8).is_err()); // 4×1024 fills 4096
        for b in blocks {
            a.free(&mut m, b).unwrap();
        }
        assert!(a.audit());
        assert_eq!(a.free_bytes(), before);
        // Fully merged again: a max-size block is allocatable.
        a.alloc(&mut m, 4096, 8).unwrap();
    }

    #[test]
    fn audit_rejects_nothing_under_normal_use() {
        let (mut m, base) = region(8192);
        let mut a = BuddyAllocator::new(base, 8192);
        let mut live = Vec::new();
        for i in 0..50u64 {
            if i % 4 == 3 && !live.is_empty() {
                a.free(&mut m, live.remove(0)).unwrap();
            } else if let Ok(p) = a.alloc(&mut m, 33 + (i * 61) % 500, 8) {
                live.push(p);
            }
            assert!(a.audit(), "buddy invariant broken at step {i}");
        }
    }

    #[test]
    fn double_free_is_detected() {
        let (mut m, base) = region(4096);
        let mut a = BuddyAllocator::new(base, 4096);
        let x = a.alloc(&mut m, 64, 8).unwrap();
        a.free(&mut m, x).unwrap();
        assert!(a.free(&mut m, x).is_err());
    }

    #[test]
    fn oversized_requests_fail_cleanly() {
        let (mut m, base) = region(4096);
        let mut a = BuddyAllocator::new(base, 4096);
        assert!(a.alloc(&mut m, 8192, 8).is_err());
    }

    #[test]
    fn no_overlap_under_mixed_workload() {
        let (mut m, base) = region(64 * 1024);
        let a = BuddyAllocator::new(base, 64 * 1024);
        check_no_overlap(a, &mut m);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_region_panics() {
        let (_m, base) = region(4096);
        let _ = BuddyAllocator::new(base, 3000);
    }

    #[test]
    fn large_alignment_is_honored() {
        let (mut m, base) = region(8192);
        let mut a = BuddyAllocator::new(base, 8192);
        a.alloc(&mut m, 10, 8).unwrap();
        let x = a.alloc(&mut m, 10, 1024).unwrap();
        assert_eq!((x.0 - base.0) % 1024, 0);
    }
}
