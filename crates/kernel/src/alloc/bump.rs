//! Bump allocator: constant-time allocation, no reuse.
//!
//! The classic boot-time/arena design: a pointer walks the region; `free`
//! only releases memory when the whole arena resets. Used for
//! compartments with phase-structured allocation (e.g. packet-processing
//! arenas) and as the simplest baseline in the allocator ablation bench.

use super::{align_up, heap_exhausted, AllocStats, Allocator};
use flexos_machine::{Addr, Fault, Machine, Result};
use std::collections::BTreeMap;

/// A bump allocator over `[base, base+len)`.
#[derive(Debug)]
pub struct BumpAllocator {
    base: Addr,
    len: u64,
    next: u64,
    /// Live allocation sizes (for `size_of` and leak accounting).
    live: BTreeMap<u64, u64>,
    stats: AllocStats,
}

impl BumpAllocator {
    /// Creates a bump allocator over the region.
    pub fn new(base: Addr, len: u64) -> Self {
        Self {
            base,
            len,
            next: 0,
            live: BTreeMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// Resets the arena, invalidating all live allocations at once.
    pub fn reset(&mut self) {
        self.next = 0;
        self.live.clear();
        self.stats.live_bytes = 0;
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> u64 {
        self.len - self.next
    }
}

impl Allocator for BumpAllocator {
    fn alloc(&mut self, m: &mut Machine, size: u64, align: u64) -> Result<Addr> {
        m.charge(m.costs().alloc_op);
        let size = size.max(1);
        let start = align_up(self.base.0 + self.next, align) - self.base.0;
        let end = start
            .checked_add(size)
            .ok_or_else(|| heap_exhausted(size))?;
        if end > self.len {
            return Err(heap_exhausted(size));
        }
        self.next = end;
        self.live.insert(start, size);
        self.stats.on_alloc(size);
        Ok(Addr(self.base.0 + start))
    }

    fn free(&mut self, m: &mut Machine, addr: Addr) -> Result<()> {
        m.charge(m.costs().alloc_op / 2);
        let off = addr.0.wrapping_sub(self.base.0);
        match self.live.remove(&off) {
            Some(size) => {
                self.stats.on_free(size);
                Ok(())
            }
            None => Err(Fault::HardeningAbort {
                mechanism: "alloc",
                reason: format!("invalid free of {addr} (bump allocator)"),
            }),
        }
    }

    fn size_of(&self, addr: Addr) -> Option<u64> {
        self.live.get(&addr.0.wrapping_sub(self.base.0)).copied()
    }

    fn region(&self) -> (Addr, u64) {
        (self.base, self.len)
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "bump"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::testutil::region;

    #[test]
    fn allocations_are_sequential_and_aligned() {
        let (mut m, base) = region(4096);
        let mut a = BumpAllocator::new(base, 4096);
        let x = a.alloc(&mut m, 10, 8).unwrap();
        let y = a.alloc(&mut m, 10, 64).unwrap();
        assert!(y.0 >= x.0 + 10);
        assert_eq!(y.0 % 64, 0);
    }

    #[test]
    fn exhaustion_faults() {
        let (mut m, base) = region(4096);
        let mut a = BumpAllocator::new(base, 128);
        a.alloc(&mut m, 100, 8).unwrap();
        assert!(a.alloc(&mut m, 100, 8).is_err());
    }

    #[test]
    fn free_does_not_reclaim_but_reset_does() {
        let (mut m, base) = region(4096);
        let mut a = BumpAllocator::new(base, 64);
        let x = a.alloc(&mut m, 40, 8).unwrap();
        a.free(&mut m, x).unwrap();
        assert!(a.alloc(&mut m, 40, 8).is_err()); // no reuse
        a.reset();
        a.alloc(&mut m, 40, 8).unwrap(); // arena reset reclaims
    }

    #[test]
    fn invalid_free_is_detected() {
        let (mut m, base) = region(4096);
        let mut a = BumpAllocator::new(base, 4096);
        assert!(a.free(&mut m, Addr(base.0 + 8)).is_err());
    }

    #[test]
    fn size_of_reports_live_allocations() {
        let (mut m, base) = region(4096);
        let mut a = BumpAllocator::new(base, 4096);
        let x = a.alloc(&mut m, 33, 8).unwrap();
        assert_eq!(a.size_of(x), Some(33));
        a.free(&mut m, x).unwrap();
        assert_eq!(a.size_of(x), None);
    }

    #[test]
    fn charges_cycles() {
        let (mut m, base) = region(4096);
        let mut a = BumpAllocator::new(base, 4096);
        let c0 = m.clock().cycles();
        a.alloc(&mut m, 8, 8).unwrap();
        assert!(m.clock().cycles() > c0);
    }
}
