//! Memory-allocator micro-libraries (`ukalloc` in Unikraft terms).
//!
//! FlexOS makes the allocator a first-class compartmentalization concern:
//!
//! * the VM backend *requires* one allocator per compartment ("each
//!   compartment needs its own memory allocator and scheduler", §3);
//! * SH techniques instrument `malloc`, so "FlexOS can be configured to
//!   use separate memory allocators per compartment to avoid such
//!   overheads when only a subset of compartments are hardened" (§3) —
//!   the point of Figure 4's global-vs-local allocator experiment.
//!
//! Three allocator designs are provided ([`BumpAllocator`],
//! [`FreeListAllocator`], [`BuddyAllocator`]), all implementing
//! [`Allocator`] over a region of *simulated* memory, plus
//! [`HeapService`] which dispatches per compartment (global or dedicated
//! mode).

pub mod buddy;
pub mod bump;
pub mod list;
pub mod percpt;

pub use buddy::BuddyAllocator;
pub use bump::BumpAllocator;
pub use list::FreeListAllocator;
pub use percpt::{AllocMode, HeapService};

use flexos_machine::{Addr, Machine, Result};

/// Usage statistics for an allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of frees.
    pub frees: u64,
    /// Bytes currently allocated (as requested, not counting padding).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
}

impl AllocStats {
    pub(crate) fn on_alloc(&mut self, size: u64) {
        self.allocs += 1;
        self.live_bytes += size;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    pub(crate) fn on_free(&mut self, size: u64) {
        self.frees += 1;
        self.live_bytes = self.live_bytes.saturating_sub(size);
    }
}

/// A heap allocator over a region of simulated memory.
///
/// Implementations keep their bookkeeping host-side (the allocator *is*
/// the micro-library; what lives in simulated memory is the payload), and
/// charge the machine's `alloc_op` cost per operation so allocation
/// pressure shows up in throughput numbers.
pub trait Allocator: std::fmt::Debug {
    /// Allocates `size` bytes aligned to `align` (a power of two).
    /// Returns the payload address.
    fn alloc(&mut self, m: &mut Machine, size: u64, align: u64) -> Result<Addr>;

    /// Frees an allocation previously returned by [`Allocator::alloc`].
    fn free(&mut self, m: &mut Machine, addr: Addr) -> Result<()>;

    /// Size of the live allocation at `addr`, if any (used by hardening
    /// layers for bounds metadata).
    fn size_of(&self, addr: Addr) -> Option<u64>;

    /// The managed region as `(base, len)`.
    fn region(&self) -> (Addr, u64);

    /// Usage statistics.
    fn stats(&self) -> AllocStats;

    /// Short implementation name.
    fn name(&self) -> &'static str;
}

/// Rounds `v` up to the next multiple of `align` (a power of two).
pub(crate) fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

/// Returns an "out of heap" fault for a failed allocation.
pub(crate) fn heap_exhausted(requested: u64) -> flexos_machine::Fault {
    flexos_machine::Fault::OutOfMemory {
        requested_pages: requested.div_ceil(4096),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use flexos_machine::{Addr, Machine, PageFlags, ProtKey, VmId};

    /// Allocates a fresh test region of `bytes` on a fresh machine.
    pub fn region(bytes: u64) -> (Machine, Addr) {
        let mut m = Machine::with_defaults();
        let base = m
            .alloc_region(VmId(0), bytes, ProtKey(0), PageFlags::RW)
            .unwrap();
        (m, base)
    }

    /// Exercises an allocator with a deterministic workload and checks
    /// non-overlap + alignment invariants.
    pub fn check_no_overlap<A: super::Allocator>(mut a: A, m: &mut Machine) {
        let mut live: Vec<(u64, u64)> = Vec::new();
        let sizes = [8u64, 24, 100, 512, 64, 1, 4096, 16];
        for (i, &s) in sizes.iter().cycle().take(64).enumerate() {
            let align = 1 << (i % 5);
            match a.alloc(m, s, align) {
                Ok(addr) => {
                    assert_eq!(addr.0 % align, 0, "misaligned allocation");
                    for &(b, len) in &live {
                        let disjoint = addr.0 + s <= b || b + len <= addr.0;
                        assert!(disjoint, "overlap: [{:#x};{s}) with [{b:#x};{len})", addr.0);
                    }
                    live.push((addr.0, s));
                }
                Err(_) => {
                    // Free half the live set and continue.
                    for _ in 0..live.len() / 2 {
                        let (b, _) = live.remove(0);
                        a.free(m, Addr(b)).unwrap();
                    }
                }
            }
        }
        for (b, _) in live {
            a.free(m, Addr(b)).unwrap();
        }
        assert_eq!(a.stats().live_bytes, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_powers_of_two() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 16), 16);
    }

    #[test]
    fn stats_track_watermark() {
        let mut s = AllocStats::default();
        s.on_alloc(100);
        s.on_alloc(50);
        s.on_free(100);
        s.on_alloc(10);
        assert_eq!(s.live_bytes, 60);
        assert_eq!(s.peak_bytes, 150);
        assert_eq!(s.allocs, 3);
        assert_eq!(s.frees, 1);
    }
}
