//! First-fit free-list allocator with coalescing — the general-purpose
//! heap (the role Unikraft's default allocator plays).

use super::{align_up, heap_exhausted, AllocStats, Allocator};
use flexos_machine::{Addr, Fault, Machine, Result};
use std::collections::BTreeMap;

/// Minimum block granularity (keeps fragmentation bookkeeping sane).
const GRAIN: u64 = 16;

/// A first-fit allocator over `[base, base+len)` with free-block
/// coalescing on `free`.
///
/// Bookkeeping is exact: every byte of the region is, at all times, in
/// exactly one free block or one live block (live blocks may include
/// sub-[`GRAIN`] padding around the payload).
#[derive(Debug)]
pub struct FreeListAllocator {
    base: Addr,
    len: u64,
    /// Free blocks: offset → length; disjoint and coalesced.
    free: BTreeMap<u64, u64>,
    /// Live blocks: payload offset → (block offset, block length,
    /// requested size).
    live: BTreeMap<u64, (u64, u64, u64)>,
    stats: AllocStats,
}

impl FreeListAllocator {
    /// Creates an allocator over the region.
    pub fn new(base: Addr, len: u64) -> Self {
        let mut free = BTreeMap::new();
        if len > 0 {
            free.insert(0, len);
        }
        Self {
            base,
            len,
            free,
            live: BTreeMap::new(),
            stats: AllocStats::default(),
        }
    }

    /// Number of free blocks (fragmentation indicator).
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Total free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// Checks internal invariants: free and live blocks are disjoint,
    /// coalesced (free side), and exactly cover the region.
    pub fn audit(&self) -> bool {
        let mut blocks: Vec<(u64, u64, bool)> = self
            .free
            .iter()
            .map(|(&o, &l)| (o, l, true))
            .chain(self.live.values().map(|&(o, l, _)| (o, l, false)))
            .collect();
        blocks.sort_unstable();
        let mut cursor = 0u64;
        let mut prev_free = false;
        for (off, len, is_free) in blocks {
            if off != cursor || len == 0 {
                return false;
            }
            if is_free && prev_free {
                return false; // uncoalesced neighbours
            }
            prev_free = is_free;
            cursor = off + len;
        }
        cursor == self.len
    }

    fn insert_free_coalescing(&mut self, mut start: u64, mut len: u64) {
        if let Some((&poff, &plen)) = self.free.range(..start).next_back() {
            if poff + plen == start {
                self.free.remove(&poff);
                start = poff;
                len += plen;
            }
        }
        if let Some((&noff, &nlen)) = self.free.range(start..).next() {
            if noff == start + len {
                self.free.remove(&noff);
                len += nlen;
            }
        }
        self.free.insert(start, len);
    }
}

impl Allocator for FreeListAllocator {
    fn alloc(&mut self, m: &mut Machine, size: u64, align: u64) -> Result<Addr> {
        m.charge(m.costs().alloc_op);
        let size = size.max(1);
        // First fit: the lowest free block that can host an aligned payload.
        let mut found: Option<(u64, u64, u64)> = None; // (block_off, block_len, payload_off)
        for (&off, &blen) in &self.free {
            let payload = align_up(self.base.0 + off, align) - self.base.0;
            let head_pad = payload - off;
            if head_pad <= blen && blen - head_pad >= size {
                found = Some((off, blen, payload));
                break;
            }
        }
        let Some((off, blen, payload)) = found else {
            return Err(heap_exhausted(size));
        };
        self.free.remove(&off);

        // Return a head split if it is big enough to be useful.
        let head_pad = payload - off;
        let block_off = if head_pad >= GRAIN {
            self.free.insert(off, head_pad);
            payload
        } else {
            off
        };
        // Return a tail split if big enough; otherwise keep it in the block.
        let used_end = payload + size;
        let tail = off + blen - used_end;
        let block_end = if tail >= GRAIN {
            self.free.insert(used_end, tail);
            used_end
        } else {
            off + blen
        };

        self.live
            .insert(payload, (block_off, block_end - block_off, size));
        self.stats.on_alloc(size);
        Ok(Addr(self.base.0 + payload))
    }

    fn free(&mut self, m: &mut Machine, addr: Addr) -> Result<()> {
        m.charge(m.costs().alloc_op);
        let payload = addr.0.wrapping_sub(self.base.0);
        let Some((block_off, block_len, size)) = self.live.remove(&payload) else {
            return Err(Fault::HardeningAbort {
                mechanism: "alloc",
                reason: format!("invalid or double free of {addr}"),
            });
        };
        self.stats.on_free(size);
        self.insert_free_coalescing(block_off, block_len);
        Ok(())
    }

    fn size_of(&self, addr: Addr) -> Option<u64> {
        self.live
            .get(&addr.0.wrapping_sub(self.base.0))
            .map(|&(_, _, size)| size)
    }

    fn region(&self) -> (Addr, u64) {
        (self.base, self.len)
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "freelist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::testutil::{check_no_overlap, region};

    #[test]
    fn alloc_free_reuses_memory() {
        let (mut m, base) = region(4096);
        let mut a = FreeListAllocator::new(base, 256);
        let x = a.alloc(&mut m, 200, 8).unwrap();
        assert!(a.alloc(&mut m, 200, 8).is_err());
        a.free(&mut m, x).unwrap();
        a.alloc(&mut m, 200, 8).unwrap();
        assert!(a.audit());
    }

    #[test]
    fn coalescing_rebuilds_large_blocks() {
        let (mut m, base) = region(4096);
        let mut a = FreeListAllocator::new(base, 4096);
        let blocks: Vec<_> = (0..8).map(|_| a.alloc(&mut m, 512, 16).unwrap()).collect();
        assert!(a.alloc(&mut m, 512, 16).is_err());
        // Free in a scrambled order to exercise both coalescing sides.
        for &i in &[3usize, 1, 7, 5, 0, 2, 6, 4] {
            a.free(&mut m, blocks[i]).unwrap();
        }
        assert!(a.audit());
        assert_eq!(a.free_blocks(), 1);
        a.alloc(&mut m, 4096, 16).unwrap();
    }

    #[test]
    fn double_free_is_detected() {
        let (mut m, base) = region(4096);
        let mut a = FreeListAllocator::new(base, 4096);
        let x = a.alloc(&mut m, 64, 8).unwrap();
        a.free(&mut m, x).unwrap();
        assert!(a.free(&mut m, x).is_err());
    }

    #[test]
    fn alignment_is_respected_and_accounted() {
        let (mut m, base) = region(8192);
        let mut a = FreeListAllocator::new(base, 8192);
        a.alloc(&mut m, 3, 8).unwrap();
        let x = a.alloc(&mut m, 64, 256).unwrap();
        assert_eq!(x.0 % 256, 0);
        assert!(a.audit());
    }

    #[test]
    fn no_overlap_under_mixed_workload() {
        let (mut m, base) = region(64 * 1024);
        let a = FreeListAllocator::new(base, 64 * 1024);
        check_no_overlap(a, &mut m);
    }

    #[test]
    fn free_bytes_conserved_after_full_release() {
        let (mut m, base) = region(4096);
        let mut a = FreeListAllocator::new(base, 4096);
        let before = a.free_bytes();
        let x = a.alloc(&mut m, 100, 8).unwrap();
        let y = a.alloc(&mut m, 300, 64).unwrap();
        let z = a.alloc(&mut m, 7, 8).unwrap();
        for p in [y, x, z] {
            a.free(&mut m, p).unwrap();
        }
        assert!(a.audit());
        assert_eq!(a.free_bytes(), before);
        assert_eq!(a.free_blocks(), 1);
    }

    #[test]
    fn zero_size_allocs_are_valid() {
        let (mut m, base) = region(4096);
        let mut a = FreeListAllocator::new(base, 4096);
        let x = a.alloc(&mut m, 0, 8).unwrap();
        assert!(a.size_of(x).is_some());
        a.free(&mut m, x).unwrap();
        assert!(a.audit());
    }

    #[test]
    fn audit_holds_at_every_step() {
        let (mut m, base) = region(16 * 1024);
        let mut a = FreeListAllocator::new(base, 16 * 1024);
        let mut live = Vec::new();
        for i in 0..40u64 {
            if i % 3 == 2 && !live.is_empty() {
                let p = live.remove(live.len() / 2);
                a.free(&mut m, p).unwrap();
            } else {
                let sz = 17 + (i * 37) % 400;
                let al = 1 << (i % 6);
                if let Ok(p) = a.alloc(&mut m, sz, al) {
                    live.push(p);
                }
            }
            assert!(a.audit(), "invariant broken at step {i}");
        }
    }
}
