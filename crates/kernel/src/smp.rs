//! Host-side SMP primitives for free-running mode.
//!
//! Deterministic mode never leaves one host thread — [`sched::smp::SmpRunQueue`]
//! (crate::sched::smp) interleaves logical vCPUs on a canonical order. In
//! **free-running** mode the bench harness gives each vCPU a real host
//! thread, and those threads need two things the simulated-memory
//! micro-libs cannot provide:
//!
//! * [`WorkStealQueue`] — per-worker deques with LIFO-local/FIFO-steal
//!   balancing, the host analogue of the per-vCPU run queues;
//! * [`SpscRing`] — a single-producer/single-consumer doorbell ring whose
//!   head/tail publication mirrors the [`MsgQueue`](crate::mq::MsgQueue)
//!   protocol (`head` consumer-owned, `tail` producer-owned, one
//!   Release-store publishes each side) so the loom models in
//!   `tests/loom.rs` exercise the same ordering argument the simulated
//!   ring relies on.
//!
//! Both are written in safe Rust: slot hand-off goes through per-slot
//! mutexes that are uncontended *by protocol* (the producer only touches
//! slots at `tail`, the consumer only at `head`), while the Acquire/
//! Release pairs on the index atomics are the actual synchronization
//! points — identical in shape to a page-table generation bump or an mq
//! tail publication. Compiled under `--cfg loom`, every `Mutex`/atomic
//! below swaps to the `loom` model types so the protocol itself is what
//! gets checked, not the std implementations.

#[cfg(loom)]
use loom::sync::{
    atomic::{AtomicU64, Ordering},
    Mutex,
};
#[cfg(not(loom))]
use std::sync::{
    atomic::{AtomicU64, Ordering},
    Mutex,
};

/// A fixed-capacity single-producer/single-consumer ring for cross-thread
/// doorbells.
///
/// The protocol is the mq layout transplanted to host atomics:
/// `tail` is written only by the producer (Release, after the slot is
/// filled), `head` only by the consumer (Release, after the slot is
/// drained); each side Acquire-loads the other's index before touching a
/// slot. Indices increase monotonically and are reduced mod capacity at
/// slot-selection time, exactly like `MsgQueue::slot_addr`.
#[derive(Debug)]
pub struct SpscRing<T> {
    slots: Vec<Mutex<Option<T>>>,
    head: AtomicU64,
    tail: AtomicU64,
}

impl<T> SpscRing<T> {
    /// Creates a ring with room for `capacity` in-flight messages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring needs at least one slot");
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: attempts to enqueue `v`. Returns `Err(v)` if the
    /// ring is full so the caller can retry or coalesce.
    pub fn try_send(&self, v: T) -> std::result::Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed); // producer-owned
        let head = self.head.load(Ordering::Acquire); // consumer progress
        if tail - head == self.slots.len() as u64 {
            return Err(v);
        }
        let idx = (tail % self.slots.len() as u64) as usize;
        *self.slots[idx].lock().expect("spsc slot poisoned") = Some(v);
        // Publish: everything written to the slot happens-before a
        // consumer that Acquire-loads this tail.
        self.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Consumer side: attempts to dequeue. Returns `None` when empty.
    pub fn try_recv(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed); // consumer-owned
        let tail = self.tail.load(Ordering::Acquire); // producer progress
        if tail == head {
            return None;
        }
        let idx = (head % self.slots.len() as u64) as usize;
        let v = self.slots[idx]
            .lock()
            .expect("spsc slot poisoned")
            .take()
            .expect("published slot must be full");
        // Publish: the slot is free again for a producer that
        // Acquire-loads this head.
        self.head.store(head + 1, Ordering::Release);
        Some(v)
    }

    /// Messages currently in flight (racy snapshot, for stats only).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A coalescing doorbell: many rings collapse into one pending count, the
/// host analogue of the machine's `notify_coalesced`.
///
/// The producer `ring()`s (Release add) and the consumer `drain()`s
/// (Acquire swap-to-zero), so any slot data published before the ring is
/// visible to the drainer — the same argument, one level up, as the
/// [`SpscRing`] tail.
#[derive(Debug, Default)]
pub struct Doorbell {
    pending: AtomicU64,
}

impl Doorbell {
    /// Creates an idle doorbell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals the doorbell once.
    pub fn ring(&self) {
        self.pending.fetch_add(1, Ordering::Release);
    }

    /// Takes all pending signals, returning how many were coalesced.
    pub fn drain(&self) -> u64 {
        self.pending.swap(0, Ordering::Acquire)
    }

    /// Pending signals (racy snapshot).
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }
}

/// Per-worker deques with stealing, for balancing free-running shards
/// across host threads.
///
/// `push`/`pop` on a worker's own deque are FIFO (matching the simulated
/// schedulers); a worker whose deque runs dry `steal`s the *oldest* item
/// from the longest sibling deque. Each deque has its own mutex so two
/// workers only contend when one is actually stealing from the other.
#[derive(Debug)]
pub struct WorkStealQueue<T> {
    queues: Vec<Mutex<std::collections::VecDeque<T>>>,
    steals: AtomicU64,
}

impl<T> WorkStealQueue<T> {
    /// Creates a queue set for `workers` host threads (min 1).
    pub fn new(workers: usize) -> Self {
        let n = workers.max(1);
        Self {
            queues: (0..n)
                .map(|_| Mutex::new(std::collections::VecDeque::new()))
                .collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues `v` on `worker`'s local deque.
    pub fn push(&self, worker: usize, v: T) {
        self.queues[worker % self.queues.len()]
            .lock()
            .expect("work queue poisoned")
            .push_back(v);
    }

    /// Dequeues from `worker`'s local deque, stealing from the fullest
    /// sibling if the local deque is empty.
    pub fn pop(&self, worker: usize) -> Option<T> {
        let w = worker % self.queues.len();
        if let Some(v) = self.queues[w]
            .lock()
            .expect("work queue poisoned")
            .pop_front()
        {
            return Some(v);
        }
        // Steal: scan siblings for the longest deque, take its head.
        let mut best: Option<(usize, usize)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            if i == w {
                continue;
            }
            let len = q.lock().expect("work queue poisoned").len();
            if len > 0 && best.map(|(_, l)| len > l).unwrap_or(true) {
                best = Some((i, len));
            }
        }
        let (victim, _) = best?;
        let v = self.queues[victim]
            .lock()
            .expect("work queue poisoned")
            .pop_front();
        if v.is_some() {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        v
    }

    /// Total successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Total items across all deques (racy snapshot).
    pub fn len(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.lock().expect("work queue poisoned").len())
            .sum()
    }

    /// Whether every deque is (momentarily) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The host-side admission barrier behind live gate-backend migration.
///
/// Free-running serve shards call [`DrainBarrier::try_enter`] before each
/// burst of gate work and [`DrainBarrier::exit`] after; the migration
/// driver calls [`DrainBarrier::begin_drain`], after which `try_enter`
/// fails (the shard backs off and retries post-swap) and the driver spins
/// on [`DrainBarrier::quiesced`] until the last in-flight burst exits.
/// Because admission stops *before* the wait begins, a shard that submits
/// continuously cannot stall quiescence: `in_flight` only ever shrinks
/// once `closed` is set — the same argument the simulated gate runtime
/// makes with [`Fault::GateDraining`](flexos_machine::Fault).
///
/// Orderings: `closed` uses SeqCst on both sides so a `try_enter` that
/// saw `closed == 0` and its increment cannot be reordered past a
/// `begin_drain`; in-flight entry/exit use Acquire/Release so the work
/// done inside the section happens-before `quiesced()` observing zero.
/// The loom model in `tests/loom.rs` checks exactly this protocol.
#[derive(Debug, Default)]
pub struct DrainBarrier {
    closed: AtomicU64,
    in_flight: AtomicU64,
}

impl DrainBarrier {
    /// An open barrier with nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to enter the gated section. Fails while draining.
    pub fn try_enter(&self) -> bool {
        self.in_flight.fetch_add(1, Ordering::Acquire);
        if self.closed.load(Ordering::SeqCst) != 0 {
            // Raced with begin_drain: undo and refuse admission.
            self.in_flight.fetch_sub(1, Ordering::Release);
            return false;
        }
        true
    }

    /// Leaves the gated section (pairs with a successful `try_enter`).
    pub fn exit(&self) {
        self.in_flight.fetch_sub(1, Ordering::Release);
    }

    /// Stops admission; subsequent `try_enter` calls fail until
    /// [`DrainBarrier::reopen`].
    pub fn begin_drain(&self) {
        self.closed.store(1, Ordering::SeqCst);
    }

    /// Whether admission is currently stopped.
    pub fn draining(&self) -> bool {
        self.closed.load(Ordering::SeqCst) != 0
    }

    /// Whether the section is drained: admission stopped and no entrant
    /// still inside. Only meaningful after [`DrainBarrier::begin_drain`].
    pub fn quiesced(&self) -> bool {
        self.closed.load(Ordering::SeqCst) != 0 && self.in_flight.load(Ordering::Acquire) == 0
    }

    /// Reopens admission after the swap.
    pub fn reopen(&self) {
        self.closed.store(0, Ordering::SeqCst);
    }
}

/// Runs `f(worker_index)` on `n` host threads and collects the results in
/// worker order. The scoped-thread helper every free-running bench uses.
#[cfg(not(loom))]
pub fn run_on_threads<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n = n.max(1);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n).map(|i| s.spawn(move || f(i))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("smp worker panicked"))
            .collect()
    })
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spsc_round_trips_in_order() {
        let r = SpscRing::new(4);
        assert!(r.try_send(1).is_ok());
        assert!(r.try_send(2).is_ok());
        assert_eq!(r.try_recv(), Some(1));
        assert_eq!(r.try_recv(), Some(2));
        assert_eq!(r.try_recv(), None);
    }

    #[test]
    fn spsc_full_ring_rejects_and_recovers() {
        let r = SpscRing::new(2);
        assert!(r.try_send(1).is_ok());
        assert!(r.try_send(2).is_ok());
        assert_eq!(r.try_send(3), Err(3));
        assert_eq!(r.try_recv(), Some(1));
        assert!(r.try_send(3).is_ok());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn spsc_wraps_across_many_rounds() {
        let r = SpscRing::new(3);
        for round in 0..50u64 {
            r.try_send(round).unwrap();
            assert_eq!(r.try_recv(), Some(round));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn spsc_cross_thread_delivery_is_lossless() {
        const N: u64 = 10_000;
        let r = Arc::new(SpscRing::new(8));
        let tx = Arc::clone(&r);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                while let Err(back) = tx.try_send(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut next = 0u64;
        while next < N {
            if let Some(v) = r.try_recv() {
                assert_eq!(v, next, "doorbell reordered or duplicated");
                next += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn drain_barrier_stops_admission_and_quiesces() {
        let b = DrainBarrier::new();
        assert!(b.try_enter());
        assert!(!b.quiesced(), "open barrier is never quiesced");
        b.begin_drain();
        assert!(b.draining());
        assert!(!b.try_enter(), "drain stops admission");
        assert!(!b.quiesced(), "one entrant still inside");
        b.exit();
        assert!(b.quiesced());
        b.reopen();
        assert!(!b.draining());
        assert!(b.try_enter());
        b.exit();
    }

    #[test]
    fn drain_barrier_quiesces_under_a_continuous_submitter() {
        let b = Arc::new(DrainBarrier::new());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (b2, stop2) = (Arc::clone(&b), Arc::clone(&stop));
        // A shard that never stops trying to enter.
        let submitter = std::thread::spawn(move || {
            let mut refused = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                if b2.try_enter() {
                    b2.exit();
                } else {
                    refused += 1;
                }
                std::thread::yield_now();
            }
            refused
        });
        b.begin_drain();
        // Bounded wait: admission is stopped, so in-flight only shrinks.
        let mut spins = 0u64;
        while !b.quiesced() {
            spins += 1;
            assert!(spins < 100_000_000, "drain starved by a submitter");
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        submitter.join().unwrap();
    }

    #[test]
    fn doorbell_coalesces() {
        let d = Doorbell::new();
        d.ring();
        d.ring();
        d.ring();
        assert_eq!(d.drain(), 3);
        assert_eq!(d.drain(), 0);
    }

    #[test]
    fn worksteal_local_fifo_then_steal() {
        let q = WorkStealQueue::new(2);
        q.push(0, 1);
        q.push(0, 2);
        q.push(1, 9);
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(9)); // stolen from worker 1
        assert_eq!(q.steals(), 1);
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn worksteal_drains_under_contention() {
        const ITEMS: usize = 4_000;
        let q = Arc::new(WorkStealQueue::new(4));
        for i in 0..ITEMS {
            q.push(i % 4, i);
        }
        let counts: Vec<usize> = run_on_threads(4, |w| {
            let mut n = 0;
            while q.pop(w).is_some() {
                n += 1;
            }
            n
        });
        assert_eq!(counts.iter().sum::<usize>(), ITEMS);
        assert!(q.is_empty());
    }

    #[test]
    fn run_on_threads_preserves_worker_order() {
        let out = run_on_threads(4, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }
}
