//! The plain cooperative round-robin scheduler (the paper's "C scheduler",
//! 76.6 ns context switch).

use super::{RunQueue, ThreadId};
use flexos_machine::{CostTable, Fault, Result};
use std::collections::{BTreeSet, VecDeque};

/// Round-robin cooperative scheduler with O(1) queue operations.
///
/// This is the *unverified* implementation: operations do minimal
/// defensive checking (exactly what a lean C implementation would do) and
/// the context-switch cost is the baseline `ctx_switch`.
#[derive(Debug, Default)]
pub struct CoopScheduler {
    ready: VecDeque<ThreadId>,
    known: BTreeSet<ThreadId>,
}

impl CoopScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RunQueue for CoopScheduler {
    fn thread_add(&mut self, t: ThreadId) -> Result<()> {
        // The C scheduler trusts its callers: double-add would corrupt a
        // real run queue; here we fail fast to keep the simulation honest,
        // but without the verified scheduler's full contract layer.
        if !self.known.insert(t) {
            return Err(Fault::HardeningAbort {
                mechanism: "sched",
                reason: format!("{t} added twice"),
            });
        }
        self.ready.push_back(t);
        Ok(())
    }

    fn thread_rm(&mut self, t: ThreadId) -> Result<()> {
        if !self.known.remove(&t) {
            return Err(Fault::HardeningAbort {
                mechanism: "sched",
                reason: format!("{t} not known"),
            });
        }
        self.ready.retain(|&x| x != t);
        Ok(())
    }

    fn pick_next(&mut self) -> Option<ThreadId> {
        self.ready.pop_front()
    }

    fn yield_back(&mut self, t: ThreadId) -> Result<()> {
        self.ready.push_back(t);
        Ok(())
    }

    fn block(&mut self, _t: ThreadId) -> Result<()> {
        // The thread is already off the ready queue (it was picked);
        // nothing to do beyond not re-queueing it.
        Ok(())
    }

    fn wake(&mut self, t: ThreadId) -> Result<()> {
        if self.known.contains(&t) && !self.ready.contains(&t) {
            self.ready.push_back(t);
        }
        Ok(())
    }

    fn contains(&self, t: ThreadId) -> bool {
        self.known.contains(&t)
    }

    fn ready_len(&self) -> usize {
        self.ready.len()
    }

    fn len(&self) -> usize {
        self.known.len()
    }

    fn switch_cost(&self, costs: &CostTable) -> u64 {
        costs.ctx_switch
    }

    fn name(&self) -> &'static str {
        "coop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::conformance;

    #[test]
    fn round_robin() {
        conformance::round_robin_order(CoopScheduler::new());
    }

    #[test]
    fn block_wake() {
        conformance::block_wake_cycle(CoopScheduler::new());
    }

    #[test]
    fn removal() {
        conformance::removal_forgets_thread(CoopScheduler::new());
    }

    #[test]
    fn switch_cost_is_the_c_scheduler_baseline() {
        let costs = CostTable::default();
        let s = CoopScheduler::new();
        // 161 cycles = 76.6 ns at 2.1 GHz (paper §4).
        assert_eq!(s.switch_cost(&costs), 161);
    }

    #[test]
    fn wake_is_idempotent_for_ready_threads() {
        let mut s = CoopScheduler::new();
        s.thread_add(ThreadId(1)).unwrap();
        s.wake(ThreadId(1)).unwrap();
        assert_eq!(s.ready_len(), 1); // no duplicate entry
    }
}
