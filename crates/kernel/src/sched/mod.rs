//! Scheduler micro-libraries.
//!
//! Three interchangeable cooperative schedulers implement the
//! [`RunQueue`] interface (the `uksched` API of the paper's listings —
//! `thread_add`, `thread_rm`, `yield`):
//!
//! * [`coop::CoopScheduler`] — the plain C-style round-robin scheduler
//!   (76.6 ns context switch in the paper);
//! * [`verified::VerifiedScheduler`] — the contract-checked port of the
//!   paper's Dafny scheduler (218.6 ns), semantically identical but
//!   re-validating pre/post-conditions and invariants on every operation;
//! * [`smp::SmpRunQueue`] — per-vCPU deques popped in the canonical
//!   global order, so any vCPU count schedules identically to the
//!   single queue (plain or verified switch costs, chosen at
//!   construction).
//!
//! Under the MPK backend the scheduler is trusted: it holds the saved
//! PKRU of non-running threads, which the executor restores through the
//! gate runtime on every switch.

pub mod coop;
pub mod smp;
pub mod verified;

pub use coop::CoopScheduler;
pub use smp::SmpRunQueue;
pub use verified::VerifiedScheduler;

use flexos_machine::{CostTable, Result};
use std::fmt;

/// Identifier of a kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

/// The scheduler micro-library interface (the paper's `uksched` API).
///
/// Semantics: a thread known to the scheduler is either *ready* (in the
/// run queue) or *off-queue* (currently running, or blocked on a wait
/// channel). `pick_next` pops the head of the ready queue; the caller is
/// then responsible for re-inserting it via `yield_back` (cooperative
/// yield) or parking it via `block`.
pub trait RunQueue: fmt::Debug {
    /// Registers a new thread and makes it ready.
    ///
    /// Precondition (verified scheduler): the thread is not already known
    /// ("one of `thread_add`'s preconditions is to not add a thread that
    /// has already been added", §2).
    fn thread_add(&mut self, t: ThreadId) -> Result<()>;

    /// Removes a thread entirely.
    fn thread_rm(&mut self, t: ThreadId) -> Result<()>;

    /// Pops the next ready thread, if any.
    fn pick_next(&mut self) -> Option<ThreadId>;

    /// Re-queues a thread that cooperatively yielded.
    fn yield_back(&mut self, t: ThreadId) -> Result<()>;

    /// Parks a running thread (leaves it known but not ready).
    fn block(&mut self, t: ThreadId) -> Result<()>;

    /// Makes a parked thread ready again.
    fn wake(&mut self, t: ThreadId) -> Result<()>;

    /// Whether the scheduler knows `t` (ready or parked).
    fn contains(&self, t: ThreadId) -> bool;

    /// Number of ready threads.
    fn ready_len(&self) -> usize;

    /// Number of known threads (ready + parked).
    fn len(&self) -> usize;

    /// Whether no threads are known.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cycle cost of one context switch under this scheduler.
    fn switch_cost(&self, costs: &CostTable) -> u64;

    /// Implementation name.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod conformance {
    //! Shared behavioural tests run against every `RunQueue` impl.
    use super::*;

    pub fn round_robin_order(mut s: impl RunQueue) {
        for i in 0..3 {
            s.thread_add(ThreadId(i)).unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            let t = s.pick_next().unwrap();
            order.push(t.0);
            s.yield_back(t).unwrap();
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    pub fn block_wake_cycle(mut s: impl RunQueue) {
        s.thread_add(ThreadId(1)).unwrap();
        s.thread_add(ThreadId(2)).unwrap();
        let t = s.pick_next().unwrap();
        assert_eq!(t, ThreadId(1));
        s.block(t).unwrap();
        assert_eq!(s.ready_len(), 1);
        assert!(s.contains(ThreadId(1)));
        // Only thread 2 is schedulable while 1 is parked.
        let t2 = s.pick_next().unwrap();
        assert_eq!(t2, ThreadId(2));
        s.yield_back(t2).unwrap();
        s.wake(ThreadId(1)).unwrap();
        // 2 was re-queued before 1 woke.
        assert_eq!(s.pick_next().unwrap(), ThreadId(2));
        s.yield_back(ThreadId(2)).unwrap();
        assert_eq!(s.pick_next().unwrap(), ThreadId(1));
    }

    pub fn removal_forgets_thread(mut s: impl RunQueue) {
        s.thread_add(ThreadId(7)).unwrap();
        s.thread_rm(ThreadId(7)).unwrap();
        assert!(!s.contains(ThreadId(7)));
        assert!(s.pick_next().is_none());
        assert!(s.is_empty());
    }
}
