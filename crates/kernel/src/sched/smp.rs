//! Per-vCPU run queues with a canonical deterministic interleave.
//!
//! [`SmpRunQueue`] is the SMP scheduler: each simulated vCPU owns a local
//! deque (Theseus-style per-CPU `task` queues) and threads are assigned a
//! home vCPU round-robin at `thread_add`. What makes it usable under the
//! repository's byte-for-byte reproducibility contract is the *canonical
//! interleave*:
//!
//! Every enqueue (add, yield, wake) stamps the thread with a monotonically
//! increasing global sequence number, and `pick_next` pops the
//! **lowest-stamped** head across all per-vCPU deques. Because each deque
//! is FIFO in stamp order, the global pop order equals the single-queue
//! round-robin order of [`CoopScheduler`](crate::sched::coop::CoopScheduler)
//! — *regardless of how many vCPUs the threads are spread over*. That is
//! the property the `smp-determinism` CI job enforces: `--stats`,
//! `--chaos` and every figure are byte-identical for `--vcpus 1/2/4`.
//!
//! Work stealing exists but is observable only through a counter: when the
//! globally-next thread does not live on the vCPU that last ran (the
//! "local" queue), the pop is accounted as a steal. The *order* never
//! changes — in deterministic mode, stealing rebalances which queue a
//! thread is popped from, not when it runs. (The free-running host-thread
//! queue in [`crate::smp`] is where stealing changes real execution.)
//!
//! The seed-driven interleaver the free-running mode uses for shard
//! assignment deliberately does **not** influence this order: any
//! seed-dependent choice here would make `--vcpus 2` output differ from
//! `--vcpus 1`, which is exactly what the determinism matrix forbids.

use super::{RunQueue, ThreadId};
use flexos_machine::{CostTable, Fault, Result};
use std::collections::{BTreeMap, VecDeque};

/// SMP scheduler: per-vCPU FIFO deques, canonical global pop order.
#[derive(Debug)]
pub struct SmpRunQueue {
    /// One ready deque per vCPU, entries are `(global_seq, thread)`.
    queues: Vec<VecDeque<(u64, ThreadId)>>,
    /// Home vCPU of every known thread (ready or parked).
    home: BTreeMap<ThreadId, usize>,
    /// Next global sequence stamp.
    seq: u64,
    /// Next vCPU to home a new thread on (round-robin placement).
    next_home: usize,
    /// vCPU that served the previous `pick_next` (steal accounting).
    last_vcpu: usize,
    /// Pops served from a deque other than `last_vcpu`'s.
    steals: u64,
    /// Charge the verified scheduler's contract-checked switch cost.
    verified: bool,
}

impl SmpRunQueue {
    /// Creates a scheduler with `vcpus` per-vCPU deques (min 1).
    pub fn new(vcpus: usize) -> Self {
        let n = vcpus.max(1);
        Self {
            queues: vec![VecDeque::new(); n],
            home: BTreeMap::new(),
            seq: 0,
            next_home: 0,
            last_vcpu: 0,
            steals: 0,
            verified: false,
        }
    }

    /// Like [`new`](Self::new), but charging the verified scheduler's
    /// contract-checked context-switch cost on every switch.
    pub fn new_verified(vcpus: usize) -> Self {
        Self {
            verified: true,
            ..Self::new(vcpus)
        }
    }

    /// Number of per-vCPU deques.
    pub fn vcpus(&self) -> usize {
        self.queues.len()
    }

    /// Pops served from a non-local deque (deterministic-mode "steals").
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// The home vCPU a thread was placed on, if known.
    pub fn home_of(&self, t: ThreadId) -> Option<usize> {
        self.home.get(&t).copied()
    }

    fn enqueue(&mut self, vcpu: usize, t: ThreadId) {
        let stamp = self.seq;
        self.seq += 1;
        self.queues[vcpu].push_back((stamp, t));
    }

    fn is_ready(&self, t: ThreadId) -> bool {
        self.queues.iter().any(|q| q.iter().any(|&(_, x)| x == t))
    }
}

impl RunQueue for SmpRunQueue {
    fn thread_add(&mut self, t: ThreadId) -> Result<()> {
        if self.home.contains_key(&t) {
            return Err(Fault::HardeningAbort {
                mechanism: "sched",
                reason: format!("{t} added twice"),
            });
        }
        let vcpu = self.next_home;
        self.next_home = (self.next_home + 1) % self.queues.len();
        self.home.insert(t, vcpu);
        self.enqueue(vcpu, t);
        Ok(())
    }

    fn thread_rm(&mut self, t: ThreadId) -> Result<()> {
        if self.home.remove(&t).is_none() {
            return Err(Fault::HardeningAbort {
                mechanism: "sched",
                reason: format!("{t} not known"),
            });
        }
        for q in &mut self.queues {
            q.retain(|&(_, x)| x != t);
        }
        Ok(())
    }

    fn pick_next(&mut self) -> Option<ThreadId> {
        // Canonical interleave: take the globally oldest ready thread.
        // Scanning queue heads is O(vcpus); each deque is FIFO in stamp
        // order, so heads are sufficient.
        let vcpu = self
            .queues
            .iter()
            .enumerate()
            .filter_map(|(i, q)| q.front().map(|&(s, _)| (s, i)))
            .min()
            .map(|(_, i)| i)?;
        let (_, t) = self.queues[vcpu].pop_front().expect("head just observed");
        if vcpu != self.last_vcpu {
            self.steals += 1;
            self.last_vcpu = vcpu;
        }
        Some(t)
    }

    fn yield_back(&mut self, t: ThreadId) -> Result<()> {
        let vcpu = self.home.get(&t).copied().unwrap_or(self.last_vcpu);
        self.enqueue(vcpu, t);
        Ok(())
    }

    fn block(&mut self, _t: ThreadId) -> Result<()> {
        // Already off the ready deques (it was picked); stays known.
        Ok(())
    }

    fn wake(&mut self, t: ThreadId) -> Result<()> {
        if self.home.contains_key(&t) && !self.is_ready(t) {
            let vcpu = self.home[&t];
            self.enqueue(vcpu, t);
        }
        Ok(())
    }

    fn contains(&self, t: ThreadId) -> bool {
        self.home.contains_key(&t)
    }

    fn ready_len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    fn len(&self) -> usize {
        self.home.len()
    }

    fn switch_cost(&self, costs: &CostTable) -> u64 {
        if self.verified {
            costs.ctx_switch + costs.verified_contract_check
        } else {
            costs.ctx_switch
        }
    }

    fn name(&self) -> &'static str {
        if self.verified {
            "smp-verified"
        } else {
            "smp"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{conformance, CoopScheduler};

    #[test]
    fn conformance_at_every_width() {
        for vcpus in [1, 2, 3, 4] {
            conformance::round_robin_order(SmpRunQueue::new(vcpus));
            conformance::block_wake_cycle(SmpRunQueue::new(vcpus));
            conformance::removal_forgets_thread(SmpRunQueue::new(vcpus));
        }
    }

    #[test]
    fn canonical_order_matches_coop_for_any_width() {
        // The core determinism property: identical pop order to the
        // single-queue scheduler, whatever the vCPU count.
        for vcpus in [1, 2, 4, 7] {
            let mut smp = SmpRunQueue::new(vcpus);
            let mut coop = CoopScheduler::new();
            for i in 0..5 {
                smp.thread_add(ThreadId(i)).unwrap();
                coop.thread_add(ThreadId(i)).unwrap();
            }
            for step in 0..40 {
                let a = smp.pick_next();
                let b = coop.pick_next();
                assert_eq!(a, b, "diverged at step {step} with {vcpus} vcpus");
                let t = a.unwrap();
                if step % 7 == 3 {
                    smp.block(t).unwrap();
                    coop.block(t).unwrap();
                    smp.wake(t).unwrap();
                    coop.wake(t).unwrap();
                } else {
                    smp.yield_back(t).unwrap();
                    coop.yield_back(t).unwrap();
                }
            }
        }
    }

    #[test]
    fn threads_spread_across_home_vcpus() {
        let mut s = SmpRunQueue::new(4);
        for i in 0..8 {
            s.thread_add(ThreadId(i)).unwrap();
        }
        for i in 0..8u32 {
            assert_eq!(s.home_of(ThreadId(i)), Some(i as usize % 4));
        }
    }

    #[test]
    fn steals_count_cross_queue_pops_without_reordering() {
        let mut s = SmpRunQueue::new(2);
        s.thread_add(ThreadId(0)).unwrap(); // home 0
        s.thread_add(ThreadId(1)).unwrap(); // home 1
        assert_eq!(s.pick_next(), Some(ThreadId(0)));
        assert_eq!(s.pick_next(), Some(ThreadId(1))); // cross-queue pop
        assert!(s.steals() >= 1);
    }

    #[test]
    fn double_add_aborts_like_coop() {
        let mut s = SmpRunQueue::new(2);
        s.thread_add(ThreadId(1)).unwrap();
        assert!(matches!(
            s.thread_add(ThreadId(1)),
            Err(Fault::HardeningAbort {
                mechanism: "sched",
                ..
            })
        ));
    }

    #[test]
    fn wake_is_idempotent_for_ready_threads() {
        let mut s = SmpRunQueue::new(2);
        s.thread_add(ThreadId(1)).unwrap();
        s.wake(ThreadId(1)).unwrap();
        assert_eq!(s.ready_len(), 1);
    }

    #[test]
    fn verified_variant_charges_contract_cost() {
        let costs = CostTable::default();
        let plain = SmpRunQueue::new(2);
        let verified = SmpRunQueue::new_verified(2);
        assert_eq!(plain.switch_cost(&costs), costs.ctx_switch);
        assert_eq!(
            verified.switch_cost(&costs),
            costs.ctx_switch + costs.verified_contract_check
        );
        assert_eq!(plain.name(), "smp");
        assert_eq!(verified.name(), "smp-verified");
    }
}
