//! The verified cooperative scheduler (port of the paper's Dafny
//! scheduler).
//!
//! "We developed a verified cooperative scheduler written in Dafny; the
//! scheduler's safety is given by pre- and post-conditions that are
//! statically proven to hold by Dafny. We generate C++ code from the
//! scheduler and integrate it in FlexOS by adding glue code." (§4)
//!
//! The Dafny specification this port mirrors:
//!
//! ```text
//! class Scheduler {
//!   var ready: seq<Tid>      // ready queue, FIFO
//!   var parked: set<Tid>     // known, not ready
//!   predicate Valid() {       // the object invariant
//!     (forall i, j :: 0 <= i < j < |ready| ==> ready[i] != ready[j]) &&
//!     (forall t :: t in ready ==> t !in parked)
//!   }
//!   method ThreadAdd(t)  requires Valid() && t !in ready && t !in parked
//!                        ensures  Valid() && ready == old(ready) + [t]
//!   method ThreadRm(t)   requires Valid() && (t in ready || t in parked)
//!                        ensures  Valid() && t !in ready && t !in parked
//!   method PickNext()    requires Valid() && |ready| > 0
//!                        ensures  Valid() && result == old(ready)[0]
//!   method YieldBack(t)  requires Valid() && t !in ready && t !in parked
//!   method Block(t)      requires Valid() && t !in ready && t !in parked
//!                        ensures  t in parked
//!   method Wake(t)       requires Valid() && t in parked
//!                        ensures  t !in parked && t in ready
//! }
//! ```
//!
//! Since this is Rust, the static proof is replaced by (a) the same
//! contracts checked at runtime on every call (the cost the paper
//! measures), (b) [`VerifiedScheduler::audit`] checking the full object
//! invariant, and (c) property tests driving random operation sequences
//! against the contracts (see the `sched_equivalence` proptest suite).

use super::{RunQueue, ThreadId};
use crate::contract::{ensure, invariant, require};
use flexos_machine::{CostTable, Result};
use std::collections::{BTreeSet, VecDeque};

const COMPONENT: &str = "uksched_verified";

/// The contract-checked scheduler.
#[derive(Debug, Default)]
pub struct VerifiedScheduler {
    ready: VecDeque<ThreadId>,
    parked: BTreeSet<ThreadId>,
    /// Threads handed out by `pick_next` and not yet returned. Tracking
    /// this allows the `yield_back`/`block` preconditions to be precise.
    running: BTreeSet<ThreadId>,
    /// Contract checks performed (reported by the bench harness).
    checks: u64,
}

impl VerifiedScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of contract checks performed so far.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }

    fn in_ready(&self, t: ThreadId) -> bool {
        self.ready.contains(&t)
    }

    /// The Dafny `Valid()` object invariant, checked exhaustively.
    pub fn audit(&mut self) -> Result<()> {
        self.checks += 1;
        let mut seen = BTreeSet::new();
        for &t in &self.ready {
            invariant(COMPONENT, seen.insert(t), "ready queue has no duplicates")?;
            invariant(
                COMPONENT,
                !self.parked.contains(&t),
                "ready and parked are disjoint",
            )?;
            invariant(
                COMPONENT,
                !self.running.contains(&t),
                "ready and running are disjoint",
            )?;
        }
        for &t in &self.running {
            invariant(
                COMPONENT,
                !self.parked.contains(&t),
                "running and parked are disjoint",
            )?;
        }
        Ok(())
    }
}

impl RunQueue for VerifiedScheduler {
    fn thread_add(&mut self, t: ThreadId) -> Result<()> {
        self.checks += 1;
        // "one of thread_add's preconditions is to not add a thread that
        // has already been added" (§2).
        require(COMPONENT, !self.contains(t), "thread not already added")?;
        let old_len = self.ready.len();
        self.ready.push_back(t);
        ensure(
            COMPONENT,
            self.ready.len() == old_len + 1,
            "ready grew by one",
        )?;
        ensure(
            COMPONENT,
            self.ready.back() == Some(&t),
            "t appended at tail",
        )?;
        self.audit()
    }

    fn thread_rm(&mut self, t: ThreadId) -> Result<()> {
        self.checks += 1;
        require(COMPONENT, self.contains(t), "thread known to the scheduler")?;
        self.ready.retain(|&x| x != t);
        self.parked.remove(&t);
        self.running.remove(&t);
        ensure(COMPONENT, !self.contains(t), "thread fully forgotten")?;
        self.audit()
    }

    fn pick_next(&mut self) -> Option<ThreadId> {
        self.checks += 1;
        let t = self.ready.pop_front()?;
        self.running.insert(t);
        Some(t)
    }

    fn yield_back(&mut self, t: ThreadId) -> Result<()> {
        self.checks += 1;
        require(
            COMPONENT,
            self.running.remove(&t),
            "yielding thread was running",
        )?;
        require(COMPONENT, !self.in_ready(t), "thread not already ready")?;
        self.ready.push_back(t);
        self.audit()
    }

    fn block(&mut self, t: ThreadId) -> Result<()> {
        self.checks += 1;
        require(
            COMPONENT,
            self.running.remove(&t),
            "blocking thread was running",
        )?;
        require(
            COMPONENT,
            !self.parked.contains(&t),
            "thread not already parked",
        )?;
        self.parked.insert(t);
        ensure(COMPONENT, self.parked.contains(&t), "thread parked")?;
        self.audit()
    }

    fn wake(&mut self, t: ThreadId) -> Result<()> {
        self.checks += 1;
        // Waking a ready/running thread is a no-op in the C scheduler; the
        // verified one tolerates it explicitly (weakened precondition with
        // a proven no-op branch) because wait channels may race wakes.
        if !self.parked.contains(&t) {
            return Ok(());
        }
        self.parked.remove(&t);
        self.ready.push_back(t);
        ensure(COMPONENT, self.in_ready(t), "woken thread is ready")?;
        self.audit()
    }

    fn contains(&self, t: ThreadId) -> bool {
        self.in_ready(t) || self.parked.contains(&t) || self.running.contains(&t)
    }

    fn ready_len(&self) -> usize {
        self.ready.len()
    }

    fn len(&self) -> usize {
        self.ready.len() + self.parked.len() + self.running.len()
    }

    fn switch_cost(&self, costs: &CostTable) -> u64 {
        // 161 + 298 = 459 cycles = 218.6 ns at 2.1 GHz (paper §4).
        costs.ctx_switch + costs.verified_contract_check
    }

    fn name(&self) -> &'static str {
        "verified"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::conformance;
    use flexos_machine::Fault;

    #[test]
    fn round_robin() {
        conformance::round_robin_order(VerifiedScheduler::new());
    }

    #[test]
    fn block_wake() {
        conformance::block_wake_cycle(VerifiedScheduler::new());
    }

    #[test]
    fn removal() {
        conformance::removal_forgets_thread(VerifiedScheduler::new());
    }

    #[test]
    fn double_add_violates_the_paper_precondition() {
        let mut s = VerifiedScheduler::new();
        s.thread_add(ThreadId(1)).unwrap();
        let e = s.thread_add(ThreadId(1)).unwrap_err();
        assert!(matches!(e, Fault::ContractViolation { .. }));
        assert!(e.to_string().contains("not already added"));
    }

    #[test]
    fn yield_without_running_is_a_violation() {
        let mut s = VerifiedScheduler::new();
        s.thread_add(ThreadId(1)).unwrap();
        // Thread 1 is ready, not running: yielding it is a caller bug.
        assert!(matches!(
            s.yield_back(ThreadId(1)),
            Err(Fault::ContractViolation { .. })
        ));
    }

    #[test]
    fn rm_unknown_thread_is_a_violation() {
        let mut s = VerifiedScheduler::new();
        assert!(matches!(
            s.thread_rm(ThreadId(9)),
            Err(Fault::ContractViolation { .. })
        ));
    }

    #[test]
    fn wake_of_ready_thread_is_a_tolerated_noop() {
        let mut s = VerifiedScheduler::new();
        s.thread_add(ThreadId(1)).unwrap();
        s.wake(ThreadId(1)).unwrap();
        assert_eq!(s.ready_len(), 1);
    }

    #[test]
    fn switch_cost_matches_the_paper() {
        let costs = CostTable::default();
        let s = VerifiedScheduler::new();
        assert_eq!(s.switch_cost(&costs), 459); // 218.6 ns
                                                // 3x slower than the C scheduler, the paper's headline ratio.
        let c = crate::sched::CoopScheduler::new();
        let ratio = s.switch_cost(&costs) as f64 / c.switch_cost(&costs) as f64;
        assert!((ratio - 2.85).abs() < 0.1);
    }

    #[test]
    fn checks_are_counted() {
        let mut s = VerifiedScheduler::new();
        s.thread_add(ThreadId(1)).unwrap();
        let t = s.pick_next().unwrap();
        s.yield_back(t).unwrap();
        assert!(s.checks_performed() >= 3);
    }

    #[test]
    fn audit_passes_on_consistent_state() {
        let mut s = VerifiedScheduler::new();
        for i in 0..10 {
            s.thread_add(ThreadId(i)).unwrap();
        }
        let t = s.pick_next().unwrap();
        s.block(t).unwrap();
        s.audit().unwrap();
    }
}
