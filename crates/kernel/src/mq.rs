//! Message-queue micro-library over simulated shared memory.
//!
//! The paper lists "a message queue" among Unikraft's micro-libs (§2).
//! This one is a single-producer/single-consumer ring of fixed-size slots
//! living in *simulated* memory — so cross-compartment queues are subject
//! to the same protection-key/VM enforcement as any other data, and
//! enqueue/dequeue costs (slot copies) land on the machine clock.
//!
//! Layout in simulated memory, from `base`:
//!
//! ```text
//! +0   head (u64)     — next slot to read  (consumer-owned)
//! +8   tail (u64)     — next slot to write (producer-owned)
//! +16  slot 0 .. slot N-1, each `slot_size` bytes:
//!        [len: u64][payload: slot_size-8 bytes]
//! ```

use flexos_machine::{Addr, Fault, Machine, Result, VcpuId};
use flexos_trace::SpanKind;

const HDR: u64 = 16;

/// A SPSC ring buffer of fixed-size messages in simulated memory.
#[derive(Debug, Clone)]
pub struct MsgQueue {
    base: Addr,
    slots: u64,
    slot_size: u64,
}

impl MsgQueue {
    /// Bytes of backing memory needed for `slots` slots of `slot_size`.
    pub fn bytes_needed(slots: u64, slot_size: u64) -> u64 {
        HDR + slots * slot_size
    }

    /// Creates a queue over pre-allocated memory at `base` and zeroes the
    /// indices. `slot_size` must exceed the 8-byte length header.
    pub fn init(
        m: &mut Machine,
        vcpu: VcpuId,
        base: Addr,
        slots: u64,
        slot_size: u64,
    ) -> Result<Self> {
        assert!(slot_size > 8, "slot must fit the length header");
        assert!(slots > 0, "queue needs at least one slot");
        m.write_u64(vcpu, base, 0)?;
        m.write_u64(vcpu, Addr(base.0 + 8), 0)?;
        Ok(Self {
            base,
            slots,
            slot_size,
        })
    }

    /// Maximum payload bytes per message.
    pub fn max_payload(&self) -> u64 {
        self.slot_size - 8
    }

    fn slot_addr(&self, idx: u64) -> Addr {
        Addr(self.base.0 + HDR + (idx % self.slots) * self.slot_size)
    }

    /// Queue depth computed from untrusted indices read out of shared
    /// memory. A compartment sharing the ring can scribble over the
    /// header, so `head > tail` or a depth beyond the slot count are
    /// treated as corruption and surfaced as a [`Fault`], never as a
    /// wrap-around panic.
    fn depth(&self, head: u64, tail: u64) -> Result<u64> {
        let d = tail
            .checked_sub(head)
            .ok_or_else(|| Fault::HardeningAbort {
                mechanism: "mq",
                reason: format!("corrupted ring indices: head {head} > tail {tail}"),
            })?;
        if d > self.slots {
            return Err(Fault::HardeningAbort {
                mechanism: "mq",
                reason: format!(
                    "corrupted ring indices: depth {d} exceeds {} slots",
                    self.slots
                ),
            });
        }
        Ok(d)
    }

    /// Number of queued messages.
    pub fn len(&self, m: &mut Machine, vcpu: VcpuId) -> Result<u64> {
        let head = m.read_u64(vcpu, self.base)?;
        let tail = m.read_u64(vcpu, Addr(self.base.0 + 8))?;
        self.depth(head, tail)
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self, m: &mut Machine, vcpu: VcpuId) -> Result<bool> {
        Ok(self.len(m, vcpu)? == 0)
    }

    /// Attempts to enqueue `payload`. Returns `false` if the ring is full.
    pub fn try_send(&self, m: &mut Machine, vcpu: VcpuId, payload: &[u8]) -> Result<bool> {
        if payload.len() as u64 > self.max_payload() {
            return Err(Fault::HardeningAbort {
                mechanism: "mq",
                reason: format!(
                    "message of {} bytes exceeds slot payload {}",
                    payload.len(),
                    self.max_payload()
                ),
            });
        }
        let t0 = m.clock().cycles();
        let head = m.read_u64(vcpu, self.base)?;
        let tail = m.read_u64(vcpu, Addr(self.base.0 + 8))?;
        if self.depth(head, tail)? == self.slots {
            return Ok(false);
        }
        let slot = self.slot_addr(tail);
        m.write_u64(vcpu, slot, payload.len() as u64)?;
        m.write(vcpu, Addr(slot.0 + 8), payload)?;
        m.write_u64(vcpu, Addr(self.base.0 + 8), tail + 1)?;
        self.record_hop(m, vcpu, "mq-send", t0);
        Ok(true)
    }

    /// Span probe for one queue hop: the window from op entry to now,
    /// sharded by the (plan-determined) vCPU doing the copy.
    fn record_hop(&self, m: &mut Machine, vcpu: VcpuId, label: &'static str, t0: u64) {
        let t1 = m.clock().cycles();
        m.span_trace_mut().record(
            vcpu.0 as u16,
            SpanKind::MqHop,
            label,
            vcpu.0 as u16,
            vcpu.0 as u16,
            t0,
            t1,
        );
    }

    /// Attempts to dequeue a message into `buf`; returns the payload
    /// length, or `None` if the queue is empty.
    ///
    /// The slot's length word lives in shared memory and is untrusted: a
    /// value beyond [`max_payload`](Self::max_payload) (a corrupted
    /// header) or beyond `buf` (a too-short caller buffer) returns
    /// [`Fault::HardeningAbort`] without reading a single payload byte.
    pub fn try_recv(&self, m: &mut Machine, vcpu: VcpuId, buf: &mut [u8]) -> Result<Option<usize>> {
        let t0 = m.clock().cycles();
        let head = m.read_u64(vcpu, self.base)?;
        let tail = m.read_u64(vcpu, Addr(self.base.0 + 8))?;
        if self.depth(head, tail)? == 0 {
            return Ok(None);
        }
        let slot = self.slot_addr(head);
        let len = m.read_u64(vcpu, slot)?;
        if len > self.max_payload() {
            return Err(Fault::HardeningAbort {
                mechanism: "mq",
                reason: format!(
                    "corrupted slot header: length {len} exceeds payload capacity {}",
                    self.max_payload()
                ),
            });
        }
        let len = len as usize;
        if buf.len() < len {
            return Err(Fault::HardeningAbort {
                mechanism: "mq",
                reason: format!("receive buffer too small ({} < {len})", buf.len()),
            });
        }
        m.read(vcpu, Addr(slot.0 + 8), &mut buf[..len])?;
        m.write_u64(vcpu, self.base, head + 1)?;
        self.record_hop(m, vcpu, "mq-recv", t0);
        Ok(Some(len))
    }

    /// Enqueues up to `msgs.len()` messages with a **single** tail
    /// publication, returning how many were enqueued.
    ///
    /// Observably equivalent to calling [`try_send`](Self::try_send) once
    /// per message: it stops (without error) at the first message the
    /// full ring cannot take, rejects an oversized message with the same
    /// [`Fault::HardeningAbort`] — publishing the messages written before
    /// it first, exactly as N single sends would have — and leaves the
    /// ring contents identical. What it saves is the per-message
    /// head/tail re-read and tail write: one read pair and one
    /// publication per batch.
    pub fn enqueue_batch(&self, m: &mut Machine, vcpu: VcpuId, msgs: &[&[u8]]) -> Result<usize> {
        if msgs.is_empty() {
            return Ok(0);
        }
        let t0 = m.clock().cycles();
        let head = m.read_u64(vcpu, self.base)?;
        let tail = m.read_u64(vcpu, Addr(self.base.0 + 8))?;
        let free = self.slots - self.depth(head, tail)?;
        let mut written = 0u64;
        let mut err: Option<Fault> = None;
        for payload in msgs {
            // Oversize is checked before fullness, like `try_send`.
            if payload.len() as u64 > self.max_payload() {
                err = Some(Fault::HardeningAbort {
                    mechanism: "mq",
                    reason: format!(
                        "message of {} bytes exceeds slot payload {}",
                        payload.len(),
                        self.max_payload()
                    ),
                });
                break;
            }
            if written == free {
                break;
            }
            let slot = self.slot_addr(tail + written);
            if let Err(e) = m.write_u64(vcpu, slot, payload.len() as u64) {
                err = Some(e);
                break;
            }
            if let Err(e) = m.write(vcpu, Addr(slot.0 + 8), payload) {
                err = Some(e);
                break;
            }
            written += 1;
        }
        if written > 0 {
            m.write_u64(vcpu, Addr(self.base.0 + 8), tail + written)?;
            self.record_hop(m, vcpu, "mq-send-batch", t0);
        }
        match err {
            Some(e) => Err(e),
            None => Ok(written as usize),
        }
    }

    /// Dequeues up to `max` messages with a **single** head publication,
    /// appending each payload to `out` and returning how many were taken.
    ///
    /// Observably equivalent to calling [`try_recv`](Self::try_recv) once
    /// per message with a right-sized buffer: it stops (without error)
    /// when the ring runs dry, and a corrupted slot header raises the
    /// same [`Fault::HardeningAbort`] — after publishing the messages
    /// consumed before it, exactly as N single receives would have.
    pub fn dequeue_batch(
        &self,
        m: &mut Machine,
        vcpu: VcpuId,
        max: usize,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<usize> {
        if max == 0 {
            return Ok(0);
        }
        let t0 = m.clock().cycles();
        let head = m.read_u64(vcpu, self.base)?;
        let tail = m.read_u64(vcpu, Addr(self.base.0 + 8))?;
        let mut depth = self.depth(head, tail)?;
        let mut taken = 0u64;
        let mut err: Option<Fault> = None;
        while (taken as usize) < max && depth > 0 {
            let slot = self.slot_addr(head + taken);
            let len = match m.read_u64(vcpu, slot) {
                Ok(l) => l,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            };
            if len > self.max_payload() {
                err = Some(Fault::HardeningAbort {
                    mechanism: "mq",
                    reason: format!(
                        "corrupted slot header: length {len} exceeds payload capacity {}",
                        self.max_payload()
                    ),
                });
                break;
            }
            let mut buf = vec![0u8; len as usize];
            if let Err(e) = m.read(vcpu, Addr(slot.0 + 8), &mut buf) {
                err = Some(e);
                break;
            }
            out.push(buf);
            taken += 1;
            depth -= 1;
        }
        if taken > 0 {
            m.write_u64(vcpu, self.base, head + taken)?;
            self.record_hop(m, vcpu, "mq-recv-batch", t0);
        }
        match err {
            Some(e) => Err(e),
            None => Ok(taken as usize),
        }
    }
}

/// Wire size of one submission descriptor: four u64 words
/// (`user_data`, `arg_bytes`, `ret_bytes`, `span`).
pub const SQE_BYTES: usize = 32;

/// Wire size of one completion descriptor: three u64 words
/// (`user_data`, `res`, `span`).
pub const CQE_BYTES: usize = 24;

const SQE_SLOT: u64 = SQE_BYTES as u64 + 8;
const CQE_SLOT: u64 = CQE_BYTES as u64 + 8;

fn ring_abort(reason: String) -> Fault {
    Fault::HardeningAbort {
        mechanism: "gate-ring",
        reason,
    }
}

/// A submission descriptor in its shared-memory wire form. The `span`
/// word carries the PR-7 request-span id as a raw u64, so the kernel
/// layer stays independent of the gate runtime's types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSqe {
    /// Opaque caller cookie, echoed in the matching completion.
    pub user_data: u64,
    /// Marshalled argument bytes.
    pub arg_bytes: u64,
    /// Marshalled return bytes.
    pub ret_bytes: u64,
    /// Request-span id (0 = none).
    pub span: u64,
}

impl WireSqe {
    /// Serialises to the fixed little-endian wire layout.
    pub fn encode(&self) -> [u8; SQE_BYTES] {
        let mut b = [0u8; SQE_BYTES];
        b[..8].copy_from_slice(&self.user_data.to_le_bytes());
        b[8..16].copy_from_slice(&self.arg_bytes.to_le_bytes());
        b[16..24].copy_from_slice(&self.ret_bytes.to_le_bytes());
        b[24..].copy_from_slice(&self.span.to_le_bytes());
        b
    }

    /// Parses a descriptor read out of shared memory. The length is
    /// untrusted (a peer can enqueue a short message): anything but an
    /// exact descriptor is corruption, surfaced as a [`Fault`].
    pub fn decode(b: &[u8]) -> Result<Self> {
        if b.len() != SQE_BYTES {
            return Err(ring_abort(format!(
                "corrupted submission descriptor: {} bytes, expected {SQE_BYTES}",
                b.len()
            )));
        }
        let word = |i: usize| u64::from_le_bytes(b[i * 8..(i + 1) * 8].try_into().unwrap());
        Ok(Self {
            user_data: word(0),
            arg_bytes: word(1),
            ret_bytes: word(2),
            span: word(3),
        })
    }
}

/// A completion descriptor in its shared-memory wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireCqe {
    /// The cookie from the matching [`WireSqe`].
    pub user_data: u64,
    /// io_uring-style result value.
    pub res: i64,
    /// Request-span id (0 = none).
    pub span: u64,
}

impl WireCqe {
    /// Serialises to the fixed little-endian wire layout.
    pub fn encode(&self) -> [u8; CQE_BYTES] {
        let mut b = [0u8; CQE_BYTES];
        b[..8].copy_from_slice(&self.user_data.to_le_bytes());
        b[8..16].copy_from_slice(&self.res.to_le_bytes());
        b[16..].copy_from_slice(&self.span.to_le_bytes());
        b
    }

    /// Parses a completion read out of shared memory; same corruption
    /// contract as [`WireSqe::decode`].
    pub fn decode(b: &[u8]) -> Result<Self> {
        if b.len() != CQE_BYTES {
            return Err(ring_abort(format!(
                "corrupted completion descriptor: {} bytes, expected {CQE_BYTES}",
                b.len()
            )));
        }
        Ok(Self {
            user_data: u64::from_le_bytes(b[..8].try_into().unwrap()),
            res: i64::from_le_bytes(b[8..16].try_into().unwrap()),
            span: u64::from_le_bytes(b[16..].try_into().unwrap()),
        })
    }
}

/// An io_uring-style submission/completion ring pair in simulated shared
/// memory: the descriptor transport an async gate uses between two
/// compartments that only share a window.
///
/// Both sides are [`MsgQueue`]s, so every multi-slot operation inherits
/// the corruption validation (`head > tail`, impossible depths, slot
/// lengths beyond capacity all fault instead of panicking) and pays its
/// copy costs on the simulated clock. Multi-slot submit/reap publish the
/// ring index **once** per batch — the shared-memory analogue of the
/// coalesced doorbell the in-process fast path posts per flush.
#[derive(Debug, Clone)]
pub struct GateRing {
    sq: MsgQueue,
    cq: MsgQueue,
}

impl GateRing {
    /// Bytes of backing memory for a ring pair of `depth` slots each.
    pub fn bytes_needed(depth: u64) -> u64 {
        MsgQueue::bytes_needed(depth, SQE_SLOT) + MsgQueue::bytes_needed(depth, CQE_SLOT)
    }

    /// Creates a ring pair over pre-allocated memory at `base`.
    pub fn init(m: &mut Machine, vcpu: VcpuId, base: Addr, depth: u64) -> Result<Self> {
        let sq = MsgQueue::init(m, vcpu, base, depth, SQE_SLOT)?;
        let cq_base = Addr(base.0 + MsgQueue::bytes_needed(depth, SQE_SLOT));
        let cq = MsgQueue::init(m, vcpu, cq_base, depth, CQE_SLOT)?;
        Ok(Self { sq, cq })
    }

    /// Enqueues up to `sqes.len()` submissions with a single tail
    /// publication; returns how many fit (the rest need a later flush).
    pub fn submit_many(&self, m: &mut Machine, vcpu: VcpuId, sqes: &[WireSqe]) -> Result<usize> {
        let encoded: Vec<[u8; SQE_BYTES]> = sqes.iter().map(WireSqe::encode).collect();
        let refs: Vec<&[u8]> = encoded.iter().map(|e| e.as_slice()).collect();
        self.sq.enqueue_batch(m, vcpu, &refs)
    }

    /// Dequeues up to `max` submissions (the target side's drain),
    /// appending to `out` and publishing the head once.
    pub fn drain_submissions(
        &self,
        m: &mut Machine,
        vcpu: VcpuId,
        max: usize,
        out: &mut Vec<WireSqe>,
    ) -> Result<usize> {
        let mut raw = Vec::new();
        let n = self.sq.dequeue_batch(m, vcpu, max, &mut raw);
        // Decode whatever was consumed even if the dequeue faulted
        // midway, matching `dequeue_batch`'s publish-then-fault contract.
        for msg in &raw {
            out.push(WireSqe::decode(msg)?);
        }
        n
    }

    /// Enqueues up to `cqes.len()` completions with a single tail
    /// publication; returns how many fit.
    pub fn complete_many(&self, m: &mut Machine, vcpu: VcpuId, cqes: &[WireCqe]) -> Result<usize> {
        let encoded: Vec<[u8; CQE_BYTES]> = cqes.iter().map(WireCqe::encode).collect();
        let refs: Vec<&[u8]> = encoded.iter().map(|e| e.as_slice()).collect();
        self.cq.enqueue_batch(m, vcpu, &refs)
    }

    /// Dequeues up to `max` completions (the submitter's reap), appending
    /// to `out` and publishing the head once.
    pub fn reap_many(
        &self,
        m: &mut Machine,
        vcpu: VcpuId,
        max: usize,
        out: &mut Vec<WireCqe>,
    ) -> Result<usize> {
        let mut raw = Vec::new();
        let n = self.cq.dequeue_batch(m, vcpu, max, &mut raw);
        for msg in &raw {
            out.push(WireCqe::decode(msg)?);
        }
        n
    }

    /// Number of submissions waiting to be drained.
    pub fn sq_len(&self, m: &mut Machine, vcpu: VcpuId) -> Result<u64> {
        self.sq.len(m, vcpu)
    }

    /// Number of completions waiting to be reaped.
    pub fn cq_len(&self, m: &mut Machine, vcpu: VcpuId) -> Result<u64> {
        self.cq.len(m, vcpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexos_machine::{PageFlags, ProtKey, VmId};

    fn queue(slots: u64, slot_size: u64) -> (Machine, MsgQueue) {
        let mut m = Machine::with_defaults();
        let bytes = MsgQueue::bytes_needed(slots, slot_size);
        let base = m
            .alloc_region(VmId(0), bytes, ProtKey(0), PageFlags::RW)
            .unwrap();
        let q = MsgQueue::init(&mut m, VcpuId(0), base, slots, slot_size).unwrap();
        (m, q)
    }

    #[test]
    fn send_recv_round_trip() {
        let (mut m, q) = queue(4, 64);
        assert!(q.try_send(&mut m, VcpuId(0), b"hello").unwrap());
        let mut buf = [0u8; 64];
        let n = q.try_recv(&mut m, VcpuId(0), &mut buf).unwrap().unwrap();
        assert_eq!(&buf[..n], b"hello");
        assert!(q.is_empty(&mut m, VcpuId(0)).unwrap());
    }

    #[test]
    fn fifo_order_is_preserved() {
        let (mut m, q) = queue(8, 32);
        for i in 0..5u8 {
            q.try_send(&mut m, VcpuId(0), &[i; 3]).unwrap();
        }
        let mut buf = [0u8; 32];
        for i in 0..5u8 {
            let n = q.try_recv(&mut m, VcpuId(0), &mut buf).unwrap().unwrap();
            assert_eq!(&buf[..n], &[i; 3]);
        }
    }

    #[test]
    fn full_queue_rejects_and_empty_returns_none() {
        let (mut m, q) = queue(2, 32);
        assert!(q.try_send(&mut m, VcpuId(0), b"a").unwrap());
        assert!(q.try_send(&mut m, VcpuId(0), b"b").unwrap());
        assert!(!q.try_send(&mut m, VcpuId(0), b"c").unwrap());
        let mut buf = [0u8; 32];
        q.try_recv(&mut m, VcpuId(0), &mut buf).unwrap();
        assert!(q.try_send(&mut m, VcpuId(0), b"c").unwrap());
        q.try_recv(&mut m, VcpuId(0), &mut buf).unwrap();
        q.try_recv(&mut m, VcpuId(0), &mut buf).unwrap();
        assert!(q.try_recv(&mut m, VcpuId(0), &mut buf).unwrap().is_none());
    }

    #[test]
    fn wraparound_works() {
        let (mut m, q) = queue(2, 32);
        let mut buf = [0u8; 32];
        for round in 0..10u8 {
            q.try_send(&mut m, VcpuId(0), &[round]).unwrap();
            let n = q.try_recv(&mut m, VcpuId(0), &mut buf).unwrap().unwrap();
            assert_eq!(&buf[..n], &[round]);
        }
    }

    #[test]
    fn oversized_message_faults() {
        let (mut m, q) = queue(2, 16);
        assert!(q.try_send(&mut m, VcpuId(0), &[0u8; 9]).is_err());
        assert!(q.try_send(&mut m, VcpuId(0), &[0u8; 8]).unwrap());
    }

    #[test]
    fn corrupted_slot_length_aborts_instead_of_panicking() {
        let (mut m, q) = queue(4, 32);
        q.try_send(&mut m, VcpuId(0), b"ok").unwrap();
        // Scribble a huge length into the head slot's header, as a
        // compromised producer compartment sharing the ring could.
        let slot0 = Addr(q.base.0 + 16);
        m.write_u64(VcpuId(0), slot0, u64::MAX).unwrap();
        let mut buf = [0u8; 32];
        assert!(matches!(
            q.try_recv(&mut m, VcpuId(0), &mut buf),
            Err(Fault::HardeningAbort {
                mechanism: "mq",
                ..
            })
        ));
    }

    #[test]
    fn short_receive_buffer_aborts_instead_of_panicking() {
        let (mut m, q) = queue(4, 32);
        q.try_send(&mut m, VcpuId(0), &[7u8; 10]).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            q.try_recv(&mut m, VcpuId(0), &mut buf),
            Err(Fault::HardeningAbort {
                mechanism: "mq",
                ..
            })
        ));
        // The message is still there for a properly-sized reader.
        let mut big = [0u8; 32];
        let n = q.try_recv(&mut m, VcpuId(0), &mut big).unwrap().unwrap();
        assert_eq!(&big[..n], &[7u8; 10]);
    }

    #[test]
    fn corrupted_indices_fault_instead_of_panicking() {
        let (mut m, q) = queue(4, 32);
        // head > tail: bare subtraction would overflow.
        m.write_u64(VcpuId(0), q.base, 5).unwrap();
        m.write_u64(VcpuId(0), Addr(q.base.0 + 8), 1).unwrap();
        let mut buf = [0u8; 32];
        assert!(q.len(&mut m, VcpuId(0)).is_err());
        assert!(q.try_send(&mut m, VcpuId(0), b"x").is_err());
        assert!(q.try_recv(&mut m, VcpuId(0), &mut buf).is_err());
        // depth beyond the slot count is equally rejected.
        m.write_u64(VcpuId(0), q.base, 0).unwrap();
        m.write_u64(VcpuId(0), Addr(q.base.0 + 8), 100).unwrap();
        assert!(matches!(
            q.len(&mut m, VcpuId(0)),
            Err(Fault::HardeningAbort {
                mechanism: "mq",
                ..
            })
        ));
    }

    #[test]
    fn batch_roundtrip_preserves_fifo_and_wraps() {
        let (mut m, q) = queue(2, 32);
        let mut out = Vec::new();
        for round in 0..6u8 {
            let a = [round; 2];
            let b = [round.wrapping_add(100); 3];
            let n = q.enqueue_batch(&mut m, VcpuId(0), &[&a, &b]).unwrap();
            assert_eq!(n, 2);
            out.clear();
            assert_eq!(q.dequeue_batch(&mut m, VcpuId(0), 8, &mut out).unwrap(), 2);
            assert_eq!(out[0], &a);
            assert_eq!(out[1], &b);
        }
        assert!(q.is_empty(&mut m, VcpuId(0)).unwrap());
    }

    #[test]
    fn enqueue_batch_stops_at_full_and_publishes_partial() {
        let (mut m, q) = queue(2, 32);
        let n = q
            .enqueue_batch(&mut m, VcpuId(0), &[b"a", b"b", b"c"])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(q.len(&mut m, VcpuId(0)).unwrap(), 2);
        let mut out = Vec::new();
        q.dequeue_batch(&mut m, VcpuId(0), 8, &mut out).unwrap();
        assert_eq!(out, vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn enqueue_batch_oversize_publishes_predecessors_then_faults() {
        let (mut m, q) = queue(4, 16); // max payload 8
        let err = q
            .enqueue_batch(&mut m, VcpuId(0), &[b"ok", &[0u8; 9], b"never"])
            .unwrap_err();
        assert!(matches!(
            err,
            Fault::HardeningAbort {
                mechanism: "mq",
                ..
            }
        ));
        // The message before the oversized one is visible, like N sends.
        assert_eq!(q.len(&mut m, VcpuId(0)).unwrap(), 1);
        let mut out = Vec::new();
        q.dequeue_batch(&mut m, VcpuId(0), 8, &mut out).unwrap();
        assert_eq!(out, vec![b"ok".to_vec()]);
    }

    #[test]
    fn dequeue_batch_corrupted_header_publishes_predecessors_then_faults() {
        let (mut m, q) = queue(4, 32);
        q.enqueue_batch(&mut m, VcpuId(0), &[b"one", b"two", b"three"])
            .unwrap();
        // Corrupt the second slot's length header.
        let slot1 = Addr(q.base.0 + 16 + q.slot_size);
        m.write_u64(VcpuId(0), slot1, u64::MAX).unwrap();
        let mut out = Vec::new();
        let err = q.dequeue_batch(&mut m, VcpuId(0), 8, &mut out).unwrap_err();
        assert!(matches!(
            err,
            Fault::HardeningAbort {
                mechanism: "mq",
                ..
            }
        ));
        // The message before the corruption was consumed and published.
        assert_eq!(out, vec![b"one".to_vec()]);
        assert_eq!(q.len(&mut m, VcpuId(0)).unwrap(), 2);
    }

    fn gate_ring(depth: u64) -> (Machine, GateRing) {
        let mut m = Machine::with_defaults();
        let base = m
            .alloc_region(
                VmId(0),
                GateRing::bytes_needed(depth),
                ProtKey(0),
                PageFlags::RW,
            )
            .unwrap();
        let r = GateRing::init(&mut m, VcpuId(0), base, depth).unwrap();
        (m, r)
    }

    #[test]
    fn gate_ring_descriptor_round_trip() {
        let (mut m, r) = gate_ring(8);
        let sqes: Vec<WireSqe> = (0..5)
            .map(|i| WireSqe {
                user_data: 0x1000 + i,
                arg_bytes: 32,
                ret_bytes: 8,
                span: 7 + i,
            })
            .collect();
        assert_eq!(r.submit_many(&mut m, VcpuId(0), &sqes).unwrap(), 5);
        assert_eq!(r.sq_len(&mut m, VcpuId(0)).unwrap(), 5);

        // Target side drains, executes, completes.
        let mut drained = Vec::new();
        assert_eq!(
            r.drain_submissions(&mut m, VcpuId(0), 16, &mut drained)
                .unwrap(),
            5
        );
        assert_eq!(drained, sqes);
        let cqes: Vec<WireCqe> = drained
            .iter()
            .map(|s| WireCqe {
                user_data: s.user_data,
                res: s.arg_bytes as i64 * 2,
                span: s.span,
            })
            .collect();
        assert_eq!(r.complete_many(&mut m, VcpuId(0), &cqes).unwrap(), 5);

        // Submitter reaps in FIFO order with spans intact.
        let mut reaped = Vec::new();
        assert_eq!(r.reap_many(&mut m, VcpuId(0), 16, &mut reaped).unwrap(), 5);
        assert_eq!(reaped, cqes);
        assert_eq!(r.cq_len(&mut m, VcpuId(0)).unwrap(), 0);
    }

    #[test]
    fn gate_ring_full_sq_takes_partial_batch() {
        let (mut m, r) = gate_ring(2);
        let sqes = vec![
            WireSqe {
                user_data: 1,
                arg_bytes: 0,
                ret_bytes: 0,
                span: 0
            };
            4
        ];
        assert_eq!(r.submit_many(&mut m, VcpuId(0), &sqes).unwrap(), 2);
        let mut out = Vec::new();
        r.drain_submissions(&mut m, VcpuId(0), 16, &mut out)
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn gate_ring_corrupted_descriptor_faults_instead_of_panicking() {
        let (mut m, r) = gate_ring(4);
        // A compromised peer enqueues a short message: the slot passes the
        // MsgQueue length validation but fails descriptor decode.
        assert!(r.sq.try_send(&mut m, VcpuId(0), b"short").unwrap());
        let mut out = Vec::new();
        assert!(matches!(
            r.drain_submissions(&mut m, VcpuId(0), 16, &mut out),
            Err(Fault::HardeningAbort {
                mechanism: "gate-ring",
                ..
            })
        ));
        // Slot-header corruption is still caught one layer down.
        let (mut m, r) = gate_ring(4);
        r.submit_many(
            &mut m,
            VcpuId(0),
            &[WireSqe {
                user_data: 1,
                arg_bytes: 2,
                ret_bytes: 3,
                span: 4,
            }],
        )
        .unwrap();
        m.write_u64(VcpuId(0), Addr(r.sq.base.0 + 16), u64::MAX)
            .unwrap();
        assert!(matches!(
            r.drain_submissions(&mut m, VcpuId(0), 16, &mut out),
            Err(Fault::HardeningAbort {
                mechanism: "mq",
                ..
            })
        ));
    }

    #[test]
    fn gate_ring_respects_protection_keys() {
        // A ring in a key-3 region is unreachable once PKRU denies key 3 —
        // descriptors get the same enforcement as any shared data.
        let mut m = Machine::with_defaults();
        let base = m
            .alloc_region(
                VmId(0),
                GateRing::bytes_needed(2),
                ProtKey(3),
                PageFlags::RW,
            )
            .unwrap();
        let r = GateRing::init(&mut m, VcpuId(0), base, 2).unwrap();
        let tok = m.gate_token();
        m.wrpkru(
            VcpuId(0),
            flexos_machine::Pkru::deny_all_except(&[ProtKey(0)], &[]),
            Some(tok),
        )
        .unwrap();
        assert!(matches!(
            r.submit_many(
                &mut m,
                VcpuId(0),
                &[WireSqe {
                    user_data: 0,
                    arg_bytes: 0,
                    ret_bytes: 0,
                    span: 0
                }]
            ),
            Err(Fault::PkeyViolation { .. })
        ));
    }

    #[test]
    fn queue_respects_protection_keys() {
        // A queue in a key-3 region is unreachable once PKRU denies key 3.
        let mut m = Machine::with_defaults();
        let base = m
            .alloc_region(
                VmId(0),
                MsgQueue::bytes_needed(2, 32),
                ProtKey(3),
                PageFlags::RW,
            )
            .unwrap();
        let q = MsgQueue::init(&mut m, VcpuId(0), base, 2, 32).unwrap();
        let tok = m.gate_token();
        m.wrpkru(
            VcpuId(0),
            flexos_machine::Pkru::deny_all_except(&[ProtKey(0)], &[]),
            Some(tok),
        )
        .unwrap();
        assert!(matches!(
            q.try_send(&mut m, VcpuId(0), b"x"),
            Err(Fault::PkeyViolation { .. })
        ));
    }
}
