//! # flexos-kernel — the LibOS micro-library substrate
//!
//! The Unikraft-role crate: the fine-grained kernel components FlexOS
//! places into compartments. Matching the paper's inventory ("a
//! scheduler, a memory allocator or a message queue are all micro-libs",
//! §2):
//!
//! * [`alloc`] — three allocator designs (bump, free-list, buddy) behind
//!   one [`alloc::Allocator`] trait, and [`alloc::HeapService`] providing
//!   the global-vs-per-compartment allocator topology that Figure 4's
//!   experiment turns on.
//! * [`sched`] — the plain cooperative scheduler and the **verified
//!   scheduler** (contract-checked port of the paper's Dafny scheduler,
//!   with the 76.6 ns vs 218.6 ns context-switch cost difference).
//! * [`exec`] — the cooperative executor driving [`exec::Task`] state
//!   machines over either scheduler, restoring per-thread compartment
//!   protection (saved PKRU) on every switch.
//! * [`cotask`] — per-connection cooperative tasks for the serving
//!   tier: a slab + FIFO run queue stepped only for *woken* tasks, the
//!   executor half of the O(ready) serving contract.
//! * [`sync`] — semaphores, wait queues, mutexes. These live in the LibC
//!   compartment in the evaluation images, reproducing the paper's
//!   finding that merging the network stack and scheduler compartments
//!   does not help while semaphores sit elsewhere.
//! * [`migrate`] — the live gate-backend migration policy (escalate on
//!   threat evidence, relax under sustained load) driving the core
//!   quiescence protocol from the reproduce and serve harnesses.
//! * [`mq`] — a message-queue micro-library in simulated shared memory.
//! * [`smp`] — host-side SMP primitives (work-stealing deques, SPSC
//!   doorbell rings) for the free-running bench mode; the deterministic
//!   per-vCPU run queue lives in [`sched::smp`].
//! * [`timer`] — the `uktime` deadline queue (one-shot and periodic
//!   timers over the simulated cycle clock).
//! * [`contract`] — the runtime pre/post-condition layer standing in for
//!   Dafny's static proofs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod contract;
pub mod cotask;
pub mod exec;
pub mod migrate;
pub mod mq;
pub mod sched;
pub mod smp;
pub mod sync;
pub mod timer;

pub use alloc::{
    AllocMode, Allocator, BuddyAllocator, BumpAllocator, FreeListAllocator, HeapService,
};
pub use cotask::{CoExecutor, CoPoll, CoTask, CoTaskId};
pub use exec::{ExecSummary, Executor, KernelHal, Step, Task};
pub use migrate::{MigrationPolicy, PolicyDecision, PolicySignals};
pub use mq::{GateRing, MsgQueue, WireCqe, WireSqe, CQE_BYTES, SQE_BYTES};
pub use sched::{CoopScheduler, RunQueue, SmpRunQueue, ThreadId, VerifiedScheduler};
pub use smp::{Doorbell, DrainBarrier, SpscRing, WorkStealQueue};
pub use sync::{Mutex, SemId, SemTable, Semaphore, WaitChannel, WaitQueue};
pub use timer::{TimerAction, TimerId, TimerWheel};
