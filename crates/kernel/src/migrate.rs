//! Migration policy — *when* to swap a compartment pair's gate backend.
//!
//! The quiescence protocol in `flexos::gate` answers *how* a pair swaps
//! backends live; this module answers *when*. The policy follows the
//! ROADMAP's runtime-reconfiguration item (after LibrettOS's dynamic
//! adaptability): **escalate** isolation when the environment looks
//! hostile — flexos-inject chaos events or a `HardeningAbort` caught in
//! the observation window — and **relax** it under sustained benign load,
//! where crossing cost dominates and the serving counters show every
//! cycle matters.
//!
//! The policy is a pure state machine over per-window signal snapshots:
//! no clocks, no randomness, so same-seed runs make identical decisions
//! and the `--migrate` figures stay byte-reproducible. Hysteresis
//! (consecutive-window confirmation for relaxing, a cooldown after every
//! swap) keeps it from flapping between neighbouring rungs of the
//! isolation ladder ([`GateMechanism::isolation_rank`]).

use flexos::gate::GateMechanism;

/// One observation window's worth of evidence, gathered by the driver
/// (the reproduce harness or the serve loop) between policy ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicySignals {
    /// `HardeningAbort` faults surfaced in the window.
    pub hardening_aborts: u64,
    /// flexos-inject chaos events observed (lost doorbells, spurious
    /// pkey faults, NIC drops).
    pub chaos_events: u64,
    /// Gate operations (crossings + async submissions) in the window —
    /// the load signal.
    pub window_ops: u64,
}

/// What the policy wants done with the pair after a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Stay on the current backend.
    Hold,
    /// Raise isolation to `to` (threat evidence in the window).
    Escalate {
        /// The backend to escalate to.
        to: GateMechanism,
    },
    /// Lower isolation to `to` (sustained benign load).
    Relax {
        /// The backend to relax to.
        to: GateMechanism,
    },
}

/// The default escalation ladder, by rising [`GateMechanism::isolation_rank`].
/// Escalation climbs one rung per hostile window; relaxation descends one
/// rung per confirmed-benign streak.
const LADDER: [GateMechanism; 5] = [
    GateMechanism::DirectCall,
    GateMechanism::MpkSharedStack,
    GateMechanism::MpkSwitchedStack,
    GateMechanism::Cheri,
    GateMechanism::VmRpc,
];

/// A deterministic escalate-on-threat / relax-under-load policy for one
/// compartment pair.
#[derive(Debug, Clone)]
pub struct MigrationPolicy {
    current: GateMechanism,
    /// Windows with ≥ this many ops count as "loaded".
    load_threshold: u64,
    /// Consecutive loaded, threat-free windows required before relaxing.
    relax_after: u32,
    /// Windows to hold after any swap before deciding again.
    cooldown: u32,
    benign_streak: u32,
    cooldown_left: u32,
}

impl MigrationPolicy {
    /// A policy starting from `current`, with the default thresholds the
    /// `--migrate` sweeps use: relax after 3 consecutive loaded windows
    /// (≥ 256 ops each), 2-window cooldown after every swap.
    pub fn new(current: GateMechanism) -> Self {
        Self::with_thresholds(current, 256, 3, 2)
    }

    /// A policy with explicit thresholds (tests and sweeps).
    pub fn with_thresholds(
        current: GateMechanism,
        load_threshold: u64,
        relax_after: u32,
        cooldown: u32,
    ) -> Self {
        Self {
            current,
            load_threshold,
            relax_after,
            cooldown,
            benign_streak: 0,
            cooldown_left: 0,
        }
    }

    /// The backend the policy believes the pair is on.
    pub fn current(&self) -> GateMechanism {
        self.current
    }

    fn rung(mech: GateMechanism) -> usize {
        LADDER
            .iter()
            .position(|&m| m == mech)
            .expect("every mechanism is on the ladder")
    }

    /// Feeds one window of evidence and returns the decision. The caller
    /// applies accepted decisions via `GateRuntime::request_migration`
    /// and then calls [`MigrationPolicy::applied`].
    pub fn observe(&mut self, s: PolicySignals) -> PolicyDecision {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            self.benign_streak = 0;
            return PolicyDecision::Hold;
        }
        let hostile = s.hardening_aborts > 0 || s.chaos_events > 0;
        if hostile {
            self.benign_streak = 0;
            let rung = Self::rung(self.current);
            if rung + 1 < LADDER.len() {
                return PolicyDecision::Escalate {
                    to: LADDER[rung + 1],
                };
            }
            return PolicyDecision::Hold; // already at the top
        }
        if s.window_ops >= self.load_threshold {
            self.benign_streak += 1;
            if self.benign_streak >= self.relax_after {
                let rung = Self::rung(self.current);
                if rung > 0 {
                    return PolicyDecision::Relax {
                        to: LADDER[rung - 1],
                    };
                }
            }
        } else {
            self.benign_streak = 0;
        }
        PolicyDecision::Hold
    }

    /// Records that the driver applied a swap to `to`: resets the benign
    /// streak and starts the cooldown.
    pub fn applied(&mut self, to: GateMechanism) {
        self.current = to;
        self.benign_streak = 0;
        self.cooldown_left = self.cooldown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign_loaded() -> PolicySignals {
        PolicySignals {
            hardening_aborts: 0,
            chaos_events: 0,
            window_ops: 1000,
        }
    }

    #[test]
    fn escalates_one_rung_on_threat_evidence() {
        let mut p = MigrationPolicy::with_thresholds(GateMechanism::DirectCall, 256, 3, 0);
        let d = p.observe(PolicySignals {
            hardening_aborts: 1,
            ..Default::default()
        });
        assert_eq!(
            d,
            PolicyDecision::Escalate {
                to: GateMechanism::MpkSharedStack
            }
        );
        p.applied(GateMechanism::MpkSharedStack);
        let d = p.observe(PolicySignals {
            chaos_events: 3,
            ..Default::default()
        });
        assert_eq!(
            d,
            PolicyDecision::Escalate {
                to: GateMechanism::MpkSwitchedStack
            }
        );
    }

    #[test]
    fn holds_at_the_top_of_the_ladder() {
        let mut p = MigrationPolicy::with_thresholds(GateMechanism::VmRpc, 256, 3, 0);
        let d = p.observe(PolicySignals {
            hardening_aborts: 5,
            chaos_events: 5,
            window_ops: 9999,
        });
        assert_eq!(d, PolicyDecision::Hold);
    }

    #[test]
    fn relaxes_only_after_a_confirmed_benign_streak() {
        let mut p = MigrationPolicy::with_thresholds(GateMechanism::VmRpc, 256, 3, 0);
        assert_eq!(p.observe(benign_loaded()), PolicyDecision::Hold);
        assert_eq!(p.observe(benign_loaded()), PolicyDecision::Hold);
        assert_eq!(
            p.observe(benign_loaded()),
            PolicyDecision::Relax {
                to: GateMechanism::Cheri
            }
        );
        // An idle window resets the streak.
        p.applied(GateMechanism::Cheri);
        assert_eq!(p.observe(benign_loaded()), PolicyDecision::Hold);
        assert_eq!(p.observe(PolicySignals::default()), PolicyDecision::Hold);
        assert_eq!(p.observe(benign_loaded()), PolicyDecision::Hold);
    }

    #[test]
    fn floor_of_the_ladder_never_relaxes_further() {
        let mut p = MigrationPolicy::with_thresholds(GateMechanism::DirectCall, 1, 1, 0);
        assert_eq!(p.observe(benign_loaded()), PolicyDecision::Hold);
    }

    #[test]
    fn cooldown_suppresses_decisions_after_a_swap() {
        let mut p = MigrationPolicy::with_thresholds(GateMechanism::MpkSharedStack, 256, 1, 2);
        p.applied(GateMechanism::MpkSwitchedStack);
        // Two windows of cooldown ignore even hostile evidence.
        let hostile = PolicySignals {
            hardening_aborts: 1,
            ..Default::default()
        };
        assert_eq!(p.observe(hostile), PolicyDecision::Hold);
        assert_eq!(p.observe(hostile), PolicyDecision::Hold);
        assert_eq!(
            p.observe(hostile),
            PolicyDecision::Escalate {
                to: GateMechanism::Cheri
            }
        );
    }

    #[test]
    fn chaos_interrupts_a_benign_streak() {
        let mut p = MigrationPolicy::with_thresholds(GateMechanism::VmRpc, 256, 2, 0);
        assert_eq!(p.observe(benign_loaded()), PolicyDecision::Hold);
        let d = p.observe(PolicySignals {
            chaos_events: 1,
            window_ops: 1000,
            ..Default::default()
        });
        // Hostile window at the top: hold, and the streak restarts.
        assert_eq!(d, PolicyDecision::Hold);
        assert_eq!(p.observe(benign_loaded()), PolicyDecision::Hold);
        assert_eq!(
            p.observe(benign_loaded()),
            PolicyDecision::Relax {
                to: GateMechanism::Cheri
            }
        );
    }
}
