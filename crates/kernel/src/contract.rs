//! Runtime contracts for verified components.
//!
//! The paper's scheduler is written in Dafny, whose pre/post-conditions
//! are discharged statically; the generated C++ is then embedded with
//! *glue code that re-checks preconditions at the trust boundary* ("To
//! check that pre-conditions hold on call we integrate the checks in the
//! glue code, and disable interrupts", §4).
//!
//! In this reproduction the proofs are replaced by (a) the same
//! pre/post-conditions checked at runtime on every call, (b) full
//! data-structure invariant audits, and (c) exhaustive property tests
//! (see `sched::verified`). The *cost* of the contract layer is what the
//! paper measures (218.6 ns vs 76.6 ns context switches), and that cost
//! is charged by the verified scheduler via the machine's
//! `verified_contract_check` constant.

use flexos_machine::Fault;

/// Returns a [`Fault::ContractViolation`] for `component` when `cond` is
/// false. Use for preconditions.
///
/// # Examples
///
/// ```
/// use flexos_kernel::contract::require;
/// assert!(require("sched", true, "thread not already added").is_ok());
/// assert!(require("sched", false, "thread not already added").is_err());
/// ```
pub fn require(component: &'static str, cond: bool, condition: &str) -> flexos_machine::Result<()> {
    if cond {
        Ok(())
    } else {
        Err(Fault::ContractViolation {
            component,
            condition: format!("precondition: {condition}"),
        })
    }
}

/// Like [`require`], for postconditions.
pub fn ensure(component: &'static str, cond: bool, condition: &str) -> flexos_machine::Result<()> {
    if cond {
        Ok(())
    } else {
        Err(Fault::ContractViolation {
            component,
            condition: format!("postcondition: {condition}"),
        })
    }
}

/// Like [`require`], for data-structure invariants.
pub fn invariant(
    component: &'static str,
    cond: bool,
    condition: &str,
) -> flexos_machine::Result<()> {
    if cond {
        Ok(())
    } else {
        Err(Fault::ContractViolation {
            component,
            condition: format!("invariant: {condition}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_carry_component_and_condition() {
        let e = require("uksched_verified", false, "t not in queue").unwrap_err();
        match e {
            Fault::ContractViolation {
                component,
                condition,
            } => {
                assert_eq!(component, "uksched_verified");
                assert!(condition.contains("precondition"));
                assert!(condition.contains("t not in queue"));
            }
            other => panic!("unexpected fault {other:?}"),
        }
    }

    #[test]
    fn ensure_and_invariant_tag_their_kind() {
        match ensure("x", false, "c").unwrap_err() {
            Fault::ContractViolation { condition, .. } => {
                assert!(condition.starts_with("postcondition"))
            }
            _ => unreachable!(),
        }
        match invariant("x", false, "c").unwrap_err() {
            Fault::ContractViolation { condition, .. } => {
                assert!(condition.starts_with("invariant"))
            }
            _ => unreachable!(),
        }
    }
}
