//! Timer micro-library (`uktime` role): deadline queue over the
//! simulated cycle clock.
//!
//! Cooperative unikernels drive timeouts (TCP retransmission, semaphore
//! timeouts, sleeps) from a central deadline queue polled on the idle
//! path. Deadlines are machine cycles, so timer behaviour is exactly as
//! deterministic as everything else in the simulation.

use crate::sync::WaitChannel;
use std::collections::BTreeMap;

/// Identifier of an armed timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// What to do when a timer fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimerAction {
    /// Wake every thread parked on the channel.
    WakeChannel(WaitChannel),
    /// Surface an opaque event word to the poller (protocol timers).
    Event(u64),
}

#[derive(Debug, Clone)]
struct Entry {
    id: TimerId,
    action: TimerAction,
    /// Re-arm period (cycles) for periodic timers.
    period: Option<u64>,
}

/// A deadline queue ordered by expiry cycle.
#[derive(Debug, Default)]
pub struct TimerWheel {
    /// (deadline, sequence) → entry; the sequence breaks ties FIFO.
    queue: BTreeMap<(u64, u64), Entry>,
    next_id: u64,
    seq: u64,
    /// Timers cancelled before firing.
    pub cancelled: u64,
    /// Timers fired.
    pub fired: u64,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a one-shot timer at absolute cycle `deadline`.
    pub fn arm(&mut self, deadline: u64, action: TimerAction) -> TimerId {
        self.arm_inner(deadline, action, None)
    }

    /// Arms a periodic timer first firing at `deadline`, then every
    /// `period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (a zero-period timer would livelock
    /// the poll loop).
    pub fn arm_periodic(&mut self, deadline: u64, period: u64, action: TimerAction) -> TimerId {
        assert!(period > 0, "periodic timer needs a nonzero period");
        self.arm_inner(deadline, action, Some(period))
    }

    fn arm_inner(&mut self, deadline: u64, action: TimerAction, period: Option<u64>) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        self.seq += 1;
        self.queue
            .insert((deadline, self.seq), Entry { id, action, period });
        id
    }

    /// Cancels a timer; returns `true` if it was still armed.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        let key = self.queue.iter().find(|(_, e)| e.id == id).map(|(&k, _)| k);
        match key {
            Some(k) => {
                self.queue.remove(&k);
                self.cancelled += 1;
                true
            }
            None => false,
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The next deadline, if any (the idle loop sleeps until it).
    pub fn next_deadline(&self) -> Option<u64> {
        self.queue.keys().next().map(|&(d, _)| d)
    }

    /// Fires every timer with `deadline <= now`, re-arming periodic ones.
    /// Returns the actions in deadline order.
    pub fn poll(&mut self, now: u64) -> Vec<TimerAction> {
        let mut out = Vec::new();
        while let Some((&key @ (deadline, _), _)) = self.queue.iter().next() {
            if deadline > now {
                break;
            }
            let entry = self.queue.remove(&key).expect("key just observed");
            self.fired += 1;
            out.push(entry.action.clone());
            if let Some(period) = entry.period {
                // Skip missed periods instead of flooding (a poll after a
                // long gap fires once, like a real tickless kernel).
                let mut next = deadline;
                while next <= now {
                    next += period;
                }
                self.seq += 1;
                self.queue.insert((next, self.seq), entry);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH: WaitChannel = WaitChannel(9);

    #[test]
    fn one_shot_fires_once_at_deadline() {
        let mut w = TimerWheel::new();
        w.arm(100, TimerAction::WakeChannel(CH));
        assert!(w.poll(99).is_empty());
        assert_eq!(w.poll(100), vec![TimerAction::WakeChannel(CH)]);
        assert!(w.poll(1000).is_empty());
        assert!(w.is_empty());
    }

    #[test]
    fn timers_fire_in_deadline_order_with_fifo_ties() {
        let mut w = TimerWheel::new();
        w.arm(200, TimerAction::Event(2));
        w.arm(100, TimerAction::Event(1));
        w.arm(200, TimerAction::Event(3)); // same deadline, armed later
        let actions = w.poll(500);
        assert_eq!(
            actions,
            vec![
                TimerAction::Event(1),
                TimerAction::Event(2),
                TimerAction::Event(3)
            ]
        );
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut w = TimerWheel::new();
        let a = w.arm(100, TimerAction::Event(1));
        let _b = w.arm(100, TimerAction::Event(2));
        assert!(w.cancel(a));
        assert!(!w.cancel(a)); // already gone
        assert_eq!(w.poll(100), vec![TimerAction::Event(2)]);
        assert_eq!(w.cancelled, 1);
    }

    #[test]
    fn periodic_timers_rearm_and_skip_missed_periods() {
        let mut w = TimerWheel::new();
        w.arm_periodic(10, 10, TimerAction::Event(7));
        assert_eq!(w.poll(10).len(), 1);
        assert_eq!(w.poll(20).len(), 1);
        // A long gap: fires once, next deadline is after `now`.
        assert_eq!(w.poll(95).len(), 1);
        assert_eq!(w.next_deadline(), Some(100));
        assert_eq!(w.fired, 3);
    }

    #[test]
    fn next_deadline_supports_tickless_idle() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_deadline(), None);
        w.arm(500, TimerAction::Event(0));
        w.arm(300, TimerAction::Event(1));
        assert_eq!(w.next_deadline(), Some(300));
    }

    #[test]
    #[should_panic(expected = "nonzero period")]
    fn zero_period_is_rejected() {
        let mut w = TimerWheel::new();
        w.arm_periodic(10, 0, TimerAction::Event(0));
    }

    #[test]
    fn cancelling_a_periodic_timer_stops_it() {
        let mut w = TimerWheel::new();
        let t = w.arm_periodic(10, 10, TimerAction::Event(1));
        w.poll(10);
        assert!(w.cancel(t));
        assert!(w.poll(100).is_empty());
    }
}
