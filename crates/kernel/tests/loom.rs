//! Concurrency models for the SMP primitives, run under `--cfg loom`.
//!
//! CI's concurrency-safety lane compiles the kernel crate with
//! `RUSTFLAGS="--cfg loom"`, which swaps the atomics and mutexes inside
//! [`flexos_kernel::smp`] for the `loom` model types (see
//! `vendor/loom/src/lib.rs` for what the vendored shim checks versus the
//! real crate) and runs these models:
//!
//! * the SPSC doorbell ring's head/tail publication — the same protocol
//!   `MsgQueue` uses in simulated memory (consumer-owned head,
//!   producer-owned tail, Release-store publication, Acquire-load on the
//!   peer's index);
//! * the per-vCPU work-stealing queue — every item pushed is popped
//!   exactly once no matter how pops and steals interleave;
//! * the migration drain barrier — once `begin_drain` is published, no
//!   late `try_enter` can slip into the quiesced section, so a swap that
//!   observed `quiesced()` raced with nothing.
//!
//! Bodies are kept loom-sized: two threads, a handful of operations.

#![cfg(loom)]

use flexos_kernel::smp::{Doorbell, DrainBarrier, SpscRing, WorkStealQueue};
use loom::sync::Arc;
use loom::thread;

#[test]
fn spsc_publication_is_ordered_and_lossless() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(2));
        let tx = Arc::clone(&ring);
        let producer = thread::spawn(move || {
            let mut sent = 0u64;
            for v in [10u64, 20, 30] {
                if tx.try_send(v).is_ok() {
                    sent += 1;
                } else {
                    // Ring full: capacity 2 with a lagging consumer.
                    break;
                }
            }
            sent
        });
        let consumer = thread::spawn({
            let rx = Arc::clone(&ring);
            move || {
                let mut got = Vec::new();
                for _ in 0..3 {
                    if let Some(v) = rx.try_recv() {
                        got.push(v);
                    } else {
                        thread::yield_now();
                    }
                }
                got
            }
        });
        let sent = producer.join().unwrap();
        let got = consumer.join().unwrap();
        // Whatever interleaving ran: received values are a prefix of the
        // send order (no loss, no reordering, no tearing) and never
        // exceed what was actually published.
        assert!(got.len() as u64 <= sent);
        assert_eq!(got, [10u64, 20, 30][..got.len()].to_vec());
        // Drain the rest single-threaded; totals must reconcile.
        let mut rest = Vec::new();
        while let Some(v) = ring.try_recv() {
            rest.push(v);
        }
        assert_eq!((got.len() + rest.len()) as u64, sent);
    });
}

#[test]
fn spsc_full_ring_never_overwrites() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(1));
        let tx = Arc::clone(&ring);
        let producer = thread::spawn(move || {
            let a = tx.try_send(1u64).is_ok();
            let b = tx.try_send(2u64).is_ok();
            (a, b)
        });
        let rx = Arc::clone(&ring);
        let got = rx.try_recv();
        let (a, b) = producer.join().unwrap();
        assert!(a, "first send into an empty 1-slot ring must succeed");
        // Whatever `got` observed, nothing was ever lost or duplicated:
        let mut all: Vec<u64> = got.into_iter().collect();
        while let Some(v) = ring.try_recv() {
            all.push(v);
        }
        let sent = 1 + u64::from(b);
        assert_eq!(all.len() as u64, sent);
        assert_eq!(all, [1u64, 2][..all.len()].to_vec());
    });
}

#[test]
fn doorbell_rings_are_never_dropped() {
    loom::model(|| {
        let bell = Arc::new(Doorbell::new());
        let b1 = Arc::clone(&bell);
        let ringer = thread::spawn(move || {
            b1.ring();
            b1.ring();
        });
        let drained_concurrent = bell.drain();
        ringer.join().unwrap();
        let drained_after = bell.drain();
        assert_eq!(drained_concurrent + drained_after, 2);
    });
}

#[test]
fn drain_barrier_admits_no_late_entrant_once_quiesced() {
    loom::model(|| {
        let b = Arc::new(DrainBarrier::new());
        let shard = {
            let b = Arc::clone(&b);
            // A serve shard doing one burst of gated work: enter, "work",
            // exit — or back off if the drain already closed admission.
            thread::spawn(move || {
                if b.try_enter() {
                    b.exit();
                    true
                } else {
                    false
                }
            })
        };
        // The migration driver: stop admission, then (without spinning —
        // loom explores the interleavings instead) check whether this
        // point already counts as quiesced.
        b.begin_drain();
        let quiesced_now = b.quiesced();
        let admitted = shard.join().unwrap();
        // Core safety property: if the driver observed quiescence while
        // draining, the shard either finished before the observation or
        // was refused — never "admitted but unaccounted".
        if quiesced_now {
            assert!(
                b.quiesced(),
                "quiescence is stable: in-flight cannot grow while closed"
            );
        }
        // After the join the drain has always settled.
        assert!(b.quiesced());
        // And a post-drain reopen admits again.
        b.reopen();
        assert!(b.try_enter());
        b.exit();
        let _ = admitted;
    });
}

#[test]
fn worksteal_pops_every_item_exactly_once() {
    loom::model(|| {
        let q = Arc::new(WorkStealQueue::new(2));
        q.push(0, 1u64);
        q.push(0, 2);
        q.push(1, 3);
        let q1 = Arc::clone(&q);
        let w1 = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q1.pop(1) {
                got.push(v);
            }
            got
        });
        let mut got0 = Vec::new();
        while let Some(v) = q.pop(0) {
            got0.push(v);
        }
        let mut all = w1.join().unwrap();
        all.extend(got0);
        // One last sweep: a worker may have observed emptiness racily.
        while let Some(v) = q.pop(0) {
            all.push(v);
        }
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3], "an item was lost or duplicated");
        assert!(q.is_empty());
    });
}
