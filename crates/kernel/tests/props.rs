//! Property tests for the kernel substrate: allocator invariants,
//! scheduler equivalence (verified vs C scheduler), and message-queue
//! robustness against corrupted shared-memory headers.

use flexos_kernel::alloc::{Allocator, BuddyAllocator, FreeListAllocator};
use flexos_kernel::mq::MsgQueue;
use flexos_kernel::sched::{CoopScheduler, RunQueue, ThreadId, VerifiedScheduler};
use flexos_machine::{Addr, Machine, PageFlags, ProtKey, VcpuId, VmId};
use proptest::prelude::*;

// ---- allocator invariants -----------------------------------------------------

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc { size: u64, align_pow: u32 },
    Free { index: usize },
}

fn arb_ops(n: usize) -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (1u64..2000, 0u32..7).prop_map(|(size, align_pow)| AllocOp::Alloc { size, align_pow }),
            1 => (0usize..64).prop_map(|index| AllocOp::Free { index }),
        ],
        1..n,
    )
}

fn check_allocator(mut a: impl Allocator, m: &mut Machine, ops: &[AllocOp]) {
    let mut live: Vec<(Addr, u64)> = Vec::new();
    for op in ops {
        match op {
            AllocOp::Alloc { size, align_pow } => {
                let align = 1u64 << align_pow;
                if let Ok(p) = a.alloc(m, *size, align) {
                    assert_eq!(p.0 % align, 0, "misaligned");
                    // In-bounds.
                    let (base, len) = a.region();
                    assert!(p.0 >= base.0 && p.0 + size <= base.0 + len, "out of region");
                    // No overlap with any live block.
                    for &(b, s) in &live {
                        assert!(p.0 + size <= b.0 || b.0 + s <= p.0, "overlap");
                    }
                    assert_eq!(a.size_of(p), Some(*size.max(&1)), "size_of mismatch");
                    live.push((p, *size));
                }
            }
            AllocOp::Free { index } => {
                if !live.is_empty() {
                    let (p, _) = live.remove(index % live.len());
                    a.free(m, p).unwrap();
                    assert_eq!(a.size_of(p), None);
                }
            }
        }
    }
    // Full cleanup must always succeed and leave zero live bytes.
    for (p, _) in live {
        a.free(m, p).unwrap();
    }
    assert_eq!(a.stats().live_bytes, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn freelist_invariants_hold(ops in arb_ops(80)) {
        let mut m = Machine::with_defaults();
        let base = m.alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW).unwrap();
        check_allocator(FreeListAllocator::new(base, 1 << 20), &mut m, &ops);
    }

    #[test]
    fn buddy_invariants_hold(ops in arb_ops(80)) {
        let mut m = Machine::with_defaults();
        let base = m.alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW).unwrap();
        check_allocator(BuddyAllocator::new(base, 1 << 20), &mut m, &ops);
    }

    /// Free-list conservation: after freeing everything, one maximal
    /// block remains.
    #[test]
    fn freelist_fully_coalesces(sizes in prop::collection::vec(1u64..4000, 1..40)) {
        let mut m = Machine::with_defaults();
        let base = m.alloc_region(VmId(0), 1 << 20, ProtKey(0), PageFlags::RW).unwrap();
        let mut a = FreeListAllocator::new(base, 1 << 20);
        let before = a.free_bytes();
        let ptrs: Vec<Addr> = sizes.iter().filter_map(|&s| a.alloc(&mut m, s, 16).ok()).collect();
        // Free in reverse-of-middle order for coalescing variety.
        for (i, p) in ptrs.iter().enumerate() {
            if i % 2 == 0 {
                a.free(&mut m, *p).unwrap();
            }
        }
        for (i, p) in ptrs.iter().enumerate() {
            if i % 2 == 1 {
                a.free(&mut m, *p).unwrap();
            }
        }
        prop_assert!(a.audit());
        prop_assert_eq!(a.free_bytes(), before);
        prop_assert_eq!(a.free_blocks(), 1);
    }
}

// ---- message-queue corruption robustness ----------------------------------------

/// Which header word of the ring a hostile compartment scribbles over.
#[derive(Debug, Clone, Copy)]
enum CorruptTarget {
    Head,
    Tail,
    SlotLen(u64),
}

fn arb_corruptions(slots: u64) -> impl Strategy<Value = Vec<(CorruptTarget, u64)>> {
    prop::collection::vec(
        (
            prop_oneof![
                Just(CorruptTarget::Head),
                Just(CorruptTarget::Tail),
                (0..slots).prop_map(CorruptTarget::SlotLen),
            ],
            any::<u64>(),
        ),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No matter what garbage lands in the shared ring header, the queue
    /// API never panics: every call returns `Ok` or a typed `Fault`.
    #[test]
    fn msgqueue_survives_arbitrary_header_corruption(
        corruptions in arb_corruptions(4),
        preload in 0u64..4,
    ) {
        const SLOTS: u64 = 4;
        const SLOT_SIZE: u64 = 32;
        let mut m = Machine::with_defaults();
        let base = m
            .alloc_region(
                VmId(0),
                MsgQueue::bytes_needed(SLOTS, SLOT_SIZE),
                ProtKey(0),
                PageFlags::RW,
            )
            .unwrap();
        let q = MsgQueue::init(&mut m, VcpuId(0), base, SLOTS, SLOT_SIZE).unwrap();
        for i in 0..preload {
            q.try_send(&mut m, VcpuId(0), &[i as u8; 5]).unwrap();
        }
        for (target, value) in corruptions {
            let addr = match target {
                CorruptTarget::Head => base,
                CorruptTarget::Tail => Addr(base.0 + 8),
                CorruptTarget::SlotLen(i) => Addr(base.0 + 16 + i * SLOT_SIZE),
            };
            m.write_u64(VcpuId(0), addr, value).unwrap();
            // Every API entry point must come back with Ok or Fault —
            // a panic fails the test harness itself.
            let _ = q.len(&mut m, VcpuId(0));
            let _ = q.is_empty(&mut m, VcpuId(0));
            let _ = q.try_send(&mut m, VcpuId(0), b"probe");
            let mut buf = [0u8; SLOT_SIZE as usize];
            let _ = q.try_recv(&mut m, VcpuId(0), &mut buf);
            let mut tiny = [0u8; 1];
            let _ = q.try_recv(&mut m, VcpuId(0), &mut tiny);
        }
    }
}

// ---- message-queue batch equivalence --------------------------------------------

const BATCH_SLOTS: u64 = 4;
const BATCH_SLOT_SIZE: u64 = 24; // max payload 16

fn batch_queue() -> (Machine, MsgQueue, Addr) {
    let mut m = Machine::with_defaults();
    let base = m
        .alloc_region(
            VmId(0),
            MsgQueue::bytes_needed(BATCH_SLOTS, BATCH_SLOT_SIZE),
            ProtKey(0),
            PageFlags::RW,
        )
        .unwrap();
    let q = MsgQueue::init(&mut m, VcpuId(0), base, BATCH_SLOTS, BATCH_SLOT_SIZE).unwrap();
    (m, q, base)
}

/// Advances head and tail identically on both rings so batches are
/// exercised across wraparound, not just from a fresh queue.
fn spin_indices(pairs: &mut [(&mut Machine, &MsgQueue)], cycles: u64) {
    let mut buf = [0u8; BATCH_SLOT_SIZE as usize];
    for i in 0..cycles {
        for (m, q) in pairs.iter_mut() {
            assert!(q.try_send(m, VcpuId(0), &[i as u8]).unwrap());
            q.try_recv(m, VcpuId(0), &mut buf).unwrap().unwrap();
        }
    }
}

/// Fully drains a queue with single receives, collecting payloads.
fn drain_singles(m: &mut Machine, q: &MsgQueue) -> Vec<Vec<u8>> {
    let mut buf = [0u8; BATCH_SLOT_SIZE as usize];
    let mut out = Vec::new();
    while let Some(n) = q.try_recv(m, VcpuId(0), &mut buf).unwrap() {
        out.push(buf[..n].to_vec());
    }
    out
}

/// Messages 0–19 bytes long: some exceed the 16-byte payload capacity,
/// so batches hit the oversize-rejection path too.
fn arb_batch_msgs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..20), 0..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `enqueue_batch` is observably equivalent to the canonical
    /// sequential sender (one `try_send` per message, stopping at the
    /// first that does not enqueue): same count or fault, and the ring
    /// drains to identical contents — across wraparound, backpressure
    /// from a full ring, and oversized-message rejection.
    #[test]
    fn mq_enqueue_batch_equals_single_sends(
        cycles in 0u64..6,
        preload in 0u64..BATCH_SLOTS,
        msgs in arb_batch_msgs(),
    ) {
        let (mut m1, q1, _) = batch_queue();
        let (mut m2, q2, _) = batch_queue();
        spin_indices(&mut [(&mut m1, &q1), (&mut m2, &q2)], cycles);
        for i in 0..preload {
            assert!(q1.try_send(&mut m1, VcpuId(0), &[i as u8; 2]).unwrap());
            assert!(q2.try_send(&mut m2, VcpuId(0), &[i as u8; 2]).unwrap());
        }

        let refs: Vec<&[u8]> = msgs.iter().map(|v| v.as_slice()).collect();
        let batch = q1.enqueue_batch(&mut m1, VcpuId(0), &refs);

        let mut sent = 0usize;
        let mut single_err = None;
        for p in &refs {
            match q2.try_send(&mut m2, VcpuId(0), p) {
                Ok(true) => sent += 1,
                Ok(false) => break,
                Err(e) => { single_err = Some(e); break; }
            }
        }

        match (batch, single_err) {
            (Ok(n), None) => prop_assert_eq!(n, sent),
            (Err(b), Some(s)) => prop_assert_eq!(b, s),
            (b, s) => prop_assert!(false, "batch {:?} diverged from singles {:?}", b, s),
        }
        prop_assert_eq!(
            q1.len(&mut m1, VcpuId(0)).unwrap(),
            q2.len(&mut m2, VcpuId(0)).unwrap()
        );
        prop_assert_eq!(drain_singles(&mut m1, &q1), drain_singles(&mut m2, &q2));
    }

    /// `dequeue_batch` is observably equivalent to `max` single
    /// receives: same messages, same residual queue, and the same
    /// corrupted-header fault at the same point when a slot length is
    /// scribbled over.
    #[test]
    fn mq_dequeue_batch_equals_single_recvs(
        cycles in 0u64..6,
        fill in 0u64..=BATCH_SLOTS,
        max in 0usize..8,
        corrupt_slot in prop::option::of(0u64..BATCH_SLOTS),
    ) {
        let (mut m1, q1, base1) = batch_queue();
        let (mut m2, q2, base2) = batch_queue();
        spin_indices(&mut [(&mut m1, &q1), (&mut m2, &q2)], cycles);
        for i in 0..fill {
            assert!(q1.try_send(&mut m1, VcpuId(0), &[i as u8; 3]).unwrap());
            assert!(q2.try_send(&mut m2, VcpuId(0), &[i as u8; 3]).unwrap());
        }
        if let Some(rel) = corrupt_slot {
            // Corrupt the same *logical* message (head + rel) on both
            // rings; the slot address accounts for wraparound.
            let idx = (cycles + rel) % BATCH_SLOTS;
            for (m, base) in [(&mut m1, base1), (&mut m2, base2)] {
                let slot = Addr(base.0 + 16 + idx * BATCH_SLOT_SIZE);
                m.write_u64(VcpuId(0), slot, u64::MAX).unwrap();
            }
        }

        let mut out = Vec::new();
        let batch = q1.dequeue_batch(&mut m1, VcpuId(0), max, &mut out);

        let mut buf = [0u8; BATCH_SLOT_SIZE as usize];
        let mut singles = Vec::new();
        let mut single_err = None;
        while singles.len() < max {
            match q2.try_recv(&mut m2, VcpuId(0), &mut buf) {
                Ok(Some(n)) => singles.push(buf[..n].to_vec()),
                Ok(None) => break,
                Err(e) => { single_err = Some(e); break; }
            }
        }

        match (batch, single_err) {
            (Ok(n), None) => prop_assert_eq!(n, singles.len()),
            (Err(b), Some(s)) => prop_assert_eq!(b, s),
            (b, s) => prop_assert!(false, "batch {:?} diverged from singles {:?}", b, s),
        }
        prop_assert_eq!(out, singles);
        prop_assert_eq!(
            q1.len(&mut m1, VcpuId(0)).ok(),
            q2.len(&mut m2, VcpuId(0)).ok()
        );
    }

    /// Batch entry points survive arbitrary header corruption without
    /// panicking, like the single-message API.
    #[test]
    fn mq_batch_survives_arbitrary_header_corruption(
        corruptions in arb_corruptions(BATCH_SLOTS),
        preload in 0u64..BATCH_SLOTS,
    ) {
        let (mut m, q, base) = batch_queue();
        for i in 0..preload {
            q.try_send(&mut m, VcpuId(0), &[i as u8; 5]).unwrap();
        }
        for (target, value) in corruptions {
            let addr = match target {
                CorruptTarget::Head => base,
                CorruptTarget::Tail => Addr(base.0 + 8),
                CorruptTarget::SlotLen(i) => Addr(base.0 + 16 + i * BATCH_SLOT_SIZE),
            };
            m.write_u64(VcpuId(0), addr, value).unwrap();
            let _ = q.enqueue_batch(&mut m, VcpuId(0), &[b"probe", b"probe2"]);
            let mut out = Vec::new();
            let _ = q.dequeue_batch(&mut m, VcpuId(0), 4, &mut out);
        }
    }
}

// ---- scheduler equivalence ------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum SchedOp {
    Add(u32),
    Rm(u32),
    PickYield,
    PickBlock,
    Wake(u32),
}

fn arb_sched_ops() -> impl Strategy<Value = Vec<SchedOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u32..8).prop_map(SchedOp::Add),
            1 => (0u32..8).prop_map(SchedOp::Rm),
            4 => Just(SchedOp::PickYield),
            2 => Just(SchedOp::PickBlock),
            2 => (0u32..8).prop_map(SchedOp::Wake),
        ],
        0..60,
    )
}

/// Drives both schedulers with the same *valid* operation sequence
/// (invalid ops are skipped identically) and asserts identical
/// scheduling decisions throughout.
fn drive_both(ops: &[SchedOp]) {
    let mut coop = CoopScheduler::new();
    let mut verified = VerifiedScheduler::new();
    // Host-side mirror of which threads exist / are parked / running,
    // used to filter to valid operations.
    let mut known = std::collections::BTreeSet::new();
    let mut parked = std::collections::BTreeSet::new();
    // Never set in this driver (PickYield re-queues immediately), kept
    // for the validity-filter guards below.
    let running: Option<ThreadId> = None;

    for op in ops {
        match *op {
            SchedOp::Add(t) => {
                let t = ThreadId(t);
                if !known.contains(&t) && running != Some(t) {
                    coop.thread_add(t).unwrap();
                    verified.thread_add(t).unwrap();
                    known.insert(t);
                }
            }
            SchedOp::Rm(t) => {
                let t = ThreadId(t);
                if known.contains(&t) && running != Some(t) {
                    coop.thread_rm(t).unwrap();
                    verified.thread_rm(t).unwrap();
                    known.remove(&t);
                    parked.remove(&t);
                }
            }
            SchedOp::PickYield => {
                if running.is_none() {
                    let a = coop.pick_next();
                    let b = verified.pick_next();
                    assert_eq!(a, b, "schedulers disagree on pick");
                    if let Some(t) = a {
                        coop.yield_back(t).unwrap();
                        verified.yield_back(t).unwrap();
                    }
                }
            }
            SchedOp::PickBlock => {
                if running.is_none() {
                    let a = coop.pick_next();
                    let b = verified.pick_next();
                    assert_eq!(a, b, "schedulers disagree on pick");
                    if let Some(t) = a {
                        coop.block(t).unwrap();
                        verified.block(t).unwrap();
                        parked.insert(t);
                    }
                }
            }
            SchedOp::Wake(t) => {
                let t = ThreadId(t);
                if parked.contains(&t) {
                    coop.wake(t).unwrap();
                    verified.wake(t).unwrap();
                    parked.remove(&t);
                }
            }
        }
        assert_eq!(
            coop.ready_len(),
            verified.ready_len(),
            "ready queues diverged"
        );
        assert_eq!(coop.len(), verified.len(), "known sets diverged");
    }
    // Drain: both must produce the identical remaining schedule.
    loop {
        let a = coop.pick_next();
        let b = verified.pick_next();
        assert_eq!(a, b);
        let Some(t) = a else { break };
        coop.block(t).unwrap();
        verified.block(t).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The verified scheduler makes exactly the same scheduling
    /// decisions as the C scheduler on every valid operation sequence —
    /// the semantic-equivalence half of "verified", with the contracts
    /// (exercised on every call here) as the safety half.
    #[test]
    fn verified_scheduler_is_observationally_equal(ops in arb_sched_ops()) {
        drive_both(&ops);
    }
}
