//! The porting assistant: §5's open questions, answered with code.
//!
//! ```text
//! cargo run --example port_assist
//! ```
//!
//! Porting a library to FlexOS needs (1) its safety metadata and (2)
//! trust-boundary checks on its API. The paper flags both as open
//! problems: "methods for (semi-)automatically generating [metadata]
//! should be explored" and "the build system could possess sufficient
//! information to automatically generate wrappers that would include or
//! exclude these checks on-demand". This example runs both tools:
//!
//! 1. record a behaviour trace of an unported library,
//! 2. infer its spec + SH analysis from the trace,
//! 3. plan an image with the inferred spec,
//! 4. generate the API wrappers, checks enabled only across trust
//!    boundaries.

use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::spec::{
    infer_analysis, infer_spec, print, BehaviorTrace, GrantKind, LibSpec, ObservedRegion, Region,
};
use flexos::wrappers::generate_wrappers;
use flexos_machine::CostTable;

fn main() {
    // --- 1. Trace the library during representative runs -------------------
    // (In a full toolchain the OS records this; here the trace is the
    // result of "running the test suite under the recorder".)
    let mut trace = BehaviorTrace::new("ukmsgq");
    trace
        .read(ObservedRegion::Own)
        .read(ObservedRegion::Shared)
        .write(ObservedRegion::Own)
        .write(ObservedRegion::Shared)
        .call("ukalloc", "palloc")
        .call("uksched_verified", "yield")
        .entered("mq_send")
        .entered("mq_recv")
        .inbound(GrantKind::Read(Region::Own))
        .inbound(GrantKind::Write(Region::Shared))
        .inbound(GrantKind::Read(Region::Shared));

    // --- 2. Infer the metadata ------------------------------------------------
    let spec = infer_spec(&trace);
    let analysis = infer_analysis(&trace);
    println!("Inferred spec for `ukmsgq` (review before committing!):\n");
    println!("{}", print(&spec));

    // --- 3. Plan an image with it -------------------------------------------------
    let cfg = ImageConfig::new("ported", BackendChoice::MpkShared)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(LibraryConfig::new(spec, LibRole::Other).with_analysis(analysis))
        .with_library(LibraryConfig::new(
            LibSpec::unsafe_c("rawlib"),
            LibRole::Other,
        ));
    let plan = plan(cfg).expect("plans");
    println!(
        "Compartments: {} -> {:?}",
        plan.num_compartments, plan.compartment_names
    );

    // --- 4. Generate the API wrappers -----------------------------------------------
    let table = generate_wrappers(&plan);
    let costs = CostTable::default();
    println!(
        "\nGenerated API wrappers ({} total, {} with checks):",
        table.len(),
        table.enabled_count()
    );
    println!(
        "{:<22} {:<12} {:<10} {:>12}  reason",
        "function", "lib", "checks", "glue cycles"
    );
    for w in table.iter() {
        println!(
            "{:<22} {:<12} {:<10} {:>12}  {:?}",
            w.func,
            w.lib,
            if w.checks_enabled() {
                "INCLUDED"
            } else {
                "elided"
            },
            w.glue_cycles(&costs),
            w.reason
        );
    }
    println!(
        "\nChecks appear exactly where a caller sits in another trust domain —\n\
         \"if component A is together with component B in the same trust domain,\n\
         then checks are not necessary\" (§5), generated, not hand-written."
    );
}
