//! Design-space exploration: the paper's §2 objectives, runnable.
//!
//! ```text
//! cargo run --example design_space
//! ```
//!
//! Given the Redis library set, enumerate every (backend × hardening)
//! candidate, score predicted performance and security, and answer:
//!
//! * Objective A — most secure configuration within a cycle budget;
//! * Objective B — fastest configuration meeting a security floor.

use flexos::build::{BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::explore::{
    candidates, fastest_meeting_security, max_security_within_budget, pareto_frontier, CallProfile,
};
use flexos::spec::{Analysis, LibSpec};
use flexos_machine::CostTable;

fn main() {
    // The library set (specs as in the evaluation images).
    let base = ImageConfig::new("redis-dse", BackendChoice::None)
        .with_library(
            LibraryConfig::new(LibSpec::unsafe_c("redis"), LibRole::App)
                .with_analysis(Analysis::well_behaved()),
        )
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(
            LibraryConfig::new(LibSpec::unsafe_c("lwip"), LibRole::NetStack)
                .with_analysis(Analysis::well_behaved()),
        );

    // A per-request workload profile (calls/request, per-library work).
    let profile = CallProfile::default()
        .with_calls("redis", "lwip", 2)
        .with_calls("lwip", "uksched_verified", 4)
        .with_work("redis", 800)
        .with_work("lwip", 2500)
        .with_work("uksched_verified", 400);

    let costs = CostTable::default();
    let cands = candidates(
        &base,
        &[
            BackendChoice::None,
            BackendChoice::MpkShared,
            BackendChoice::MpkSwitched,
            BackendChoice::VmRpc,
        ],
        &profile,
        &costs,
    );
    println!("Explored {} candidate configurations.\n", cands.len());

    println!("Pareto frontier (cycles/request ↑, security ↑):");
    println!(
        "{:<40} {:>12} {:>10}",
        "configuration", "cycles/req", "security"
    );
    for c in pareto_frontier(cands.clone()) {
        println!("{:<40} {:>12} {:>10.2}", c.label, c.cycles, c.security);
    }

    for budget in [5_000u64, 8_000, 50_000] {
        match max_security_within_budget(cands.clone(), budget) {
            Some(c) => println!(
                "\nObjective A, budget {budget:>6} cy/req: {} (security {:.2}, {} cy)",
                c.label, c.security, c.cycles
            ),
            None => println!("\nObjective A, budget {budget:>6} cy/req: nothing fits"),
        }
    }

    let b = fastest_meeting_security(cands, 1.0).expect("a fully-mitigated config exists");
    println!(
        "\nObjective B, security floor 1.0: {} ({} cy/req)",
        b.label, b.cycles
    );
    println!(
        "\nThe same application ships as any of these images — the choice moved\n\
         from design time to deployment time, which is the whole point of FlexOS."
    );
}
