//! iperf under four isolation profiles of the *same* application —
//! FlexOS's pitch: pick the profile at build time, not design time.
//!
//! ```text
//! cargo run --release --example iperf_flexible
//! ```

use flexos::build::BackendChoice;
use flexos_apps::iperf::{run_iperf, IperfParams};
use flexos_apps::{CompartmentModel, SchedKind};

fn main() {
    let total = 512 * 1024;
    let configs: Vec<(&str, IperfParams)> = vec![
        (
            "no isolation (baseline)",
            IperfParams {
                total_bytes: total,
                ..IperfParams::default()
            },
        ),
        (
            "NW stack isolated, MPK shared stacks",
            IperfParams {
                model: CompartmentModel::NwOnly,
                backend: BackendChoice::MpkShared,
                total_bytes: total,
                ..IperfParams::default()
            },
        ),
        (
            "NW stack isolated, MPK switched stacks",
            IperfParams {
                model: CompartmentModel::NwOnly,
                backend: BackendChoice::MpkSwitched,
                total_bytes: total,
                ..IperfParams::default()
            },
        ),
        (
            "NW stack isolated, CHERI sealed-capability gates",
            IperfParams {
                model: CompartmentModel::NwOnly,
                backend: BackendChoice::Cheri,
                total_bytes: total,
                ..IperfParams::default()
            },
        ),
        (
            "NW stack in its own VM (EPT RPC)",
            IperfParams {
                model: CompartmentModel::NwOnly,
                backend: BackendChoice::VmRpc,
                total_bytes: total,
                ..IperfParams::default()
            },
        ),
        (
            "no isolation, network stack hardened (KASAN set)",
            IperfParams {
                sh_on: vec!["lwip".into()],
                total_bytes: total,
                ..IperfParams::default()
            },
        ),
        (
            "verified scheduler",
            IperfParams {
                sched: SchedKind::Verified,
                total_bytes: total,
                ..IperfParams::default()
            },
        ),
    ];

    println!("iperf, 512 KiB transfer, 16 KiB recv buffers, same app — seven security profiles:\n");
    println!(
        "{:<52} {:>10} {:>12} {:>10}",
        "profile", "Mb/s", "crossings", "switches"
    );
    for (name, params) in configs {
        let r = run_iperf(&params);
        println!(
            "{:<52} {:>10.0} {:>12} {:>10}",
            name, r.mbps, r.crossings, r.switches
        );
    }
    println!("\nEvery number derives from the deterministic 2.1 GHz cycle model.");
}
