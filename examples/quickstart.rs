//! Quickstart: the FlexOS pipeline in one file.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! 1. Describe two micro-libraries in the metadata language.
//! 2. Let the compatibility analysis derive the compartmentalization.
//! 3. Build the image plan against the MPK backend and boot it.
//! 4. Cross a gate legitimately — then watch an illegal access get
//!    caught by the protection keys.

use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::compat::incompatibilities;
use flexos::spec::{parse_with_name, print, LibSpec};
use flexos_backends::instantiate;

fn main() {
    // --- 1. Library metadata (the paper's §2 listings) -------------------
    let scheduler = LibSpec::verified_scheduler();
    let rawlib = parse_with_name(
        "[Memory access] Read(*); Write(*)\n\
         [Call] *",
        "rawlib",
    )
    .expect("spec parses");

    println!("Verified scheduler spec:\n{}", print(&scheduler));
    println!("Unsafe C library spec:\n{}", print(&rawlib));

    // --- 2. Compatibility analysis ----------------------------------------
    println!("Why they cannot share a compartment:");
    for v in incompatibilities(&scheduler, &rawlib) {
        println!("  - {v}");
    }

    // --- 3. Plan + boot ------------------------------------------------------
    let cfg = ImageConfig::new("quickstart", BackendChoice::MpkShared)
        .with_library(LibraryConfig::new(scheduler, LibRole::Scheduler))
        .with_library(LibraryConfig::new(rawlib, LibRole::Other));
    let plan = plan(cfg).expect("image plans");
    println!(
        "\nDerived compartments: {} ({:?})",
        plan.num_compartments, plan.compartment_names
    );

    let mut img = instantiate(plan).expect("image boots");

    // --- 4. Gates work; illegal accesses fault ---------------------------------
    let sched_c = img
        .compartment_of_lib("uksched_verified")
        .expect("scheduler placed");
    let raw_c = img.compartment_of_lib("rawlib").expect("rawlib placed");
    let sched_heap = img.gates.ctx(sched_c).heap_base;

    // Execute as rawlib's compartment; a direct poke at the scheduler's
    // heap must fault:
    img.gates
        .resume_in(&mut img.machine, raw_c)
        .expect("enter rawlib");
    let attack = img.write(sched_heap, b"hijack");
    println!(
        "\nDirect write into the scheduler compartment: {:?}",
        attack.unwrap_err()
    );

    // A gated call is the legitimate path:
    img.call_lib("uksched_verified", 16, 8, |m, rt| {
        let vcpu = rt.current_ctx().vcpu;
        m.write(vcpu, sched_heap, b"thread_add(t)")
    })
    .expect("gated call succeeds");
    println!("Gated call into the scheduler: ok");
    println!("Gate stats: {:?}", img.gates.stats());
}
