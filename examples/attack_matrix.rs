//! The attack matrix: one attack, many defenses — chosen at build time.
//!
//! ```text
//! cargo run --example attack_matrix
//! ```
//!
//! A hijacked network stack tries to overwrite the scheduler's memory
//! in four builds of the *same* system. Who stops it differs; that it
//! is stopped (outside the baseline) does not.

use flexos::build::{plan, BackendChoice};
use flexos::spec::{ShMechanism, ShSet};
use flexos_apps::{evaluation_image, CompartmentModel, Os, SchedKind};
use flexos_sh::inject;

const SERVER_IP: u32 = 0x0a00_0001;

fn attack(os: &mut Os) -> inject::AttackOutcome {
    let c_net = os.roles.net;
    let victim = os.img.gates.ctx(os.roles.sched).heap_base;
    let Os { img, sh, .. } = os;
    let flexos_backends::BootImage { machine, gates, .. } = img;
    gates
        .cross(machine, c_net, 0, 0, |m, rt| {
            let vcpu = rt.current_ctx().vcpu;
            inject::cross_component_write(m, sh, vcpu, c_net, victim, b"hijack!!")
        })
        .expect("attack scenario runs")
}

fn build(model: CompartmentModel, backend: BackendChoice, dfi_on_net: bool) -> Os {
    let mut cfg = evaluation_image("iperf", model, backend, SchedKind::Coop);
    if dfi_on_net {
        cfg.dedicated_allocators = true;
        for lib in &mut cfg.libraries {
            if lib.spec.name == "lwip" {
                lib.sh = ShSet::of([ShMechanism::Dfi]);
            }
        }
    }
    Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).expect("boots")
}

fn main() {
    println!("Attack: hijacked network stack writes into the scheduler's memory.\n");
    println!("{:<55} {:<25}", "build configuration", "outcome");
    let cases: Vec<(&str, Os)> = vec![
        (
            "baseline (no isolation, no hardening)",
            build(CompartmentModel::Baseline, BackendChoice::None, false),
        ),
        (
            "MPK, shared stacks, NW isolated",
            build(CompartmentModel::NwOnly, BackendChoice::MpkShared, false),
        ),
        (
            "one VM per compartment (EPT)",
            build(CompartmentModel::NwOnly, BackendChoice::VmRpc, false),
        ),
        (
            "no hardware isolation, DFI on the network stack",
            build(CompartmentModel::NwOnly, BackendChoice::None, true),
        ),
    ];
    for (name, mut os) in cases {
        let out = attack(&mut os);
        let outcome = match out.caught_by() {
            Some(mech) => format!("CAUGHT ({mech})"),
            None => "LANDED — scheduler memory corrupted".to_string(),
        };
        println!("{name:<55} {outcome:<25}");
    }
    println!("\nAlso: PKRU forgery (the PKU-pitfalls attack) against the MPK build:");
    let mut os = build(CompartmentModel::NwOnly, BackendChoice::MpkShared, false);
    let vcpu = os.img.gates.ctx(os.roles.net).vcpu;
    let out = inject::pkru_forge(&mut os.img.machine, vcpu).unwrap();
    println!(
        "  wrpkru without the gate capability -> {:?}",
        out.caught_by().unwrap()
    );
}
