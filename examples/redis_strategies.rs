//! Redis under the paper's §4 compartmentalization strategies —
//! including the counter-intuitive NW+Sched result.
//!
//! ```text
//! cargo run --release --example redis_strategies
//! ```

use flexos::build::BackendChoice;
use flexos_apps::redis::{run_redis, Mix, RedisParams};
use flexos_apps::CompartmentModel;

fn main() {
    println!("Redis-style KV server, pipelined GETs, 50 B values:\n");
    println!(
        "{:<18} {:<10} {:>10} {:>12} {:>10}",
        "model", "stacks", "MTps", "slowdown", "crossings"
    );

    let base = run_redis(&RedisParams {
        ops: 1000,
        ..RedisParams::default()
    })
    .expect("redis run");
    println!(
        "{:<18} {:<10} {:>10.3} {:>12} {:>10}",
        "No Isol.", "-", base.mreq_per_s, "1.00x", base.crossings
    );

    for model in [
        CompartmentModel::NwOnly,
        CompartmentModel::NwSchedRest,
        CompartmentModel::NwAndSchedRest,
    ] {
        for (label, backend) in [
            ("shared", BackendChoice::MpkShared),
            ("switched", BackendChoice::MpkSwitched),
        ] {
            let r = run_redis(&RedisParams {
                model,
                backend,
                mix: Mix::Get,
                ops: 1000,
                ..RedisParams::default()
            })
            .expect("redis run");
            println!(
                "{:<18} {:<10} {:>10.3} {:>11.2}x {:>10}",
                model.label(),
                label,
                r.mreq_per_s,
                base.mreq_per_s / r.mreq_per_s,
                r.crossings
            );
        }
    }

    println!(
        "\nNote how NW+Sched/Rest performs like NW/Sched/Rest, not like NW-only:\n\
         the semaphores live in LibC, so merging the stack and scheduler removes\n\
         no crossings — the paper's §4 finding, reproduced mechanically."
    );
}
