//! The verified scheduler: contracts, equivalence, and its price.
//!
//! ```text
//! cargo run --example verified_scheduler
//! ```
//!
//! The paper's Dafny scheduler is ported as a Rust scheduler whose
//! pre/post-conditions are enforced at runtime (the "glue code" checks).
//! This example shows a contract firing on misuse, the identical
//! scheduling behaviour of the two implementations, and the 3x
//! context-switch cost the paper measures.

use flexos_kernel::sched::{CoopScheduler, RunQueue, ThreadId, VerifiedScheduler};
use flexos_machine::{cycles_to_nanos, CostTable};

fn main() {
    // --- contracts fire on misuse ----------------------------------------
    let mut v = VerifiedScheduler::new();
    v.thread_add(ThreadId(1)).unwrap();
    println!("thread_add(1): ok");
    let err = v.thread_add(ThreadId(1)).unwrap_err();
    println!("thread_add(1) again -> {err}");
    let err = v.thread_rm(ThreadId(99)).unwrap_err();
    println!("thread_rm(99)       -> {err}");

    // --- identical scheduling decisions -------------------------------------
    let mut coop = CoopScheduler::new();
    let mut verified = VerifiedScheduler::new();
    for i in 0..4 {
        coop.thread_add(ThreadId(i)).unwrap();
        verified.thread_add(ThreadId(i)).unwrap();
    }
    print!("\nschedule (coop)    :");
    for _ in 0..8 {
        let t = coop.pick_next().unwrap();
        print!(" {}", t.0);
        coop.yield_back(t).unwrap();
    }
    print!("\nschedule (verified):");
    for _ in 0..8 {
        let t = verified.pick_next().unwrap();
        print!(" {}", t.0);
        verified.yield_back(t).unwrap();
    }
    println!(
        "\n(identical round-robin order, {} contract checks performed)",
        verified.checks_performed()
    );

    // --- the price ----------------------------------------------------------------
    let costs = CostTable::default();
    let coop_ns = cycles_to_nanos(coop.switch_cost(&costs));
    let verified_ns = cycles_to_nanos(verified.switch_cost(&costs));
    println!(
        "\ncontext switch: C scheduler {coop_ns:.1} ns, verified {verified_ns:.1} ns ({:.1}x)",
        verified_ns / coop_ns
    );
    println!("(paper §4: 76.6 ns vs 218.6 ns — 3x, yet <6% end-to-end for Redis)");
}
