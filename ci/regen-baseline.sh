#!/usr/bin/env bash
# Regenerate ci/stats-baseline.json — the recorded telemetry snapshot
# that the bench-smoke and smp-determinism CI jobs compare every run
# against (minus the host-cache-dependent `tlb` block).
#
# Run this ONLY when a drift is intentional: a deliberate change to
# deterministic costs, counters or report shape. Commit the regenerated
# file in the same PR as the change that moved it, with a sentence in
# the PR body saying WHY the numbers moved. Policy: ci/README.md.
set -euo pipefail
cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT

cargo run --release --locked -p flexos-bench --bin reproduce -- \
    --stats --quick --json="$out" >/dev/null

# Normalize exactly like the checked-in baseline: python's default
# `json.dumps` spacing, trailing newline, and the host-cache-dependent
# `tlb` block popped (CI pops it from the live run before comparing, so
# the recording must not carry it). The CI comparison is on parsed JSON,
# but a canonical on-disk form keeps diffs reviewable.
python3 - "$out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc['stats'].pop('tlb', None)
with open('ci/stats-baseline.json', 'w') as f:
    f.write(json.dumps(doc) + '\n')
EOF

echo "Rewrote ci/stats-baseline.json — review the diff before committing:"
git --no-pager diff --stat -- ci/stats-baseline.json
