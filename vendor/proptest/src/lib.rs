//! Std-only shim of the `proptest` property-testing framework.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest's API used by the workspace test suites:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`prop_oneof!`] with optional integer weights,
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map` and `boxed`,
//! * [`any::<T>()`][any] for primitive integers and `bool`,
//! * [`Just`], integer range strategies (`Range` / `RangeInclusive`),
//!   tuple strategies up to arity 6, and a regex-subset string strategy
//!   for `&'static str` patterns (character classes, `.`, and `{m,n}`
//!   repetition),
//! * `prop::collection::{vec, btree_set}` and `prop::option::of`.
//!
//! Generation is fully deterministic: each test derives its RNG seed from
//! its own name, so runs are reproducible without a persistence file.
//! There is no shrinking; a failing case reports its case number and the
//! failed assertion.

use std::ops::{Range, RangeInclusive};

/// Failure carried out of a `proptest!` body by the `prop_assert*`
/// macros.
pub type TestCaseError = String;

// ---------------------------------------------------------------------------
// deterministic RNG
// ---------------------------------------------------------------------------

/// A small deterministic PRNG (xorshift64*), seeded per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary string (the test name), so every
    /// test gets a distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Bernoulli draw with probability `num / denom`.
    pub fn gen_ratio(&mut self, num: u64, denom: u64) -> bool {
        self.gen_range(0, denom) < num
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start() as u64, *self.end() as u64 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// regex-subset string strategy
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PatternAtom {
    /// `[a-z0-9_]`-style class, expanded to the candidate characters.
    Class(Vec<char>),
    /// `.` — any printable ASCII character.
    Dot,
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct PatternPiece {
    atom: PatternAtom,
    min: usize,
    max: usize,
}

/// Parses the regex subset supported by the shim: classes, `.`, literal
/// characters, each optionally followed by `{m,n}`. Panics on anything
/// else, so unsupported patterns fail loudly at test time.
fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                PatternAtom::Class(set)
            }
            '.' => {
                i += 1;
                PatternAtom::Dot
            }
            c => {
                assert!(
                    !"\\^$|()*+?".contains(c),
                    "unsupported regex feature {c:?} in pattern {pattern:?}"
                );
                i += 1;
                PatternAtom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                None => {
                    let n = body.parse().unwrap();
                    (n, n)
                }
            };
            i = close + 1;
            (lo, hi)
        } else {
            (1, 1)
        };
        pieces.push(PatternPiece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = rng.gen_range(piece.min as u64, piece.max as u64 + 1) as usize;
            for _ in 0..n {
                match &piece.atom {
                    PatternAtom::Class(set) => {
                        out.push(set[rng.gen_range(0, set.len() as u64) as usize]);
                    }
                    PatternAtom::Dot => {
                        out.push(char::from(rng.gen_range(0x20, 0x7f) as u8));
                    }
                    PatternAtom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// weighted unions
// ---------------------------------------------------------------------------

/// Weighted union of strategies, built by [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> OneOf<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0, u64::from(self.total));
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum checked in OneOf::new")
    }
}

// ---------------------------------------------------------------------------
// collection / option strategies (the `prop::` facade)
// ---------------------------------------------------------------------------

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        Self {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min as u64, self.max_inclusive as u64 + 1) as usize
    }
}

/// The `prop::` facade module mirroring proptest's layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use std::collections::BTreeSet;

        /// A `Vec` of values from `element` with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.draw(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `BTreeSet` of values from `element` with a target size drawn
        /// from `size`. Duplicates shrink the result below the target, as
        /// in real proptest.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`btree_set`].
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let n = self.size.draw(rng);
                let mut out = BTreeSet::new();
                // Bounded attempts: tiny domains may not fill the target.
                for _ in 0..n.saturating_mul(4) {
                    if out.len() >= n {
                        break;
                    }
                    out.insert(self.element.generate(rng));
                }
                out
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// `None` or `Some` of a value from `inner`, evenly weighted.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen_ratio(1, 2) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// config + macros
// ---------------------------------------------------------------------------

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fails the enclosing proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing proptest case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` == `{}` ({})\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                ::std::format!($($fmt)+),
                left,
                right
            ));
        }
    }};
}

/// Weighted (or uniform) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each function runs `cases` times with fresh
/// generated inputs; `prop_assert*` failures abort the case with context.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(::std::stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            ::std::stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (2usize..=5).generate(&mut rng);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn string_patterns_match_their_grammar() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..500 {
            let name = "[a-z][a-z0-9_]{0,10}".generate(&mut rng);
            assert!(!name.is_empty() && name.len() <= 11);
            let first = name.chars().next().unwrap();
            assert!(first.is_ascii_lowercase());
            assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let any = ".{0,400}".generate(&mut rng);
            assert!(any.len() <= 400);
        }
    }

    #[test]
    fn oneof_honours_zero_weight_exclusion() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![3 => Just(1u32), 1 => Just(2u32)];
        let mut seen = BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen, BTreeSet::from([1, 2]));
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::deterministic("collections");
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = prop::collection::btree_set(0u8..4, 0..=3).generate(&mut rng);
            assert!(s.len() <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline itself: generated tuples map through
        /// strategies and prop_assert succeeds.
        #[test]
        fn macro_roundtrip(ab in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, b))) {
            let (a, b) = ab;
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
