//! Vendored shim of the [loom](https://crates.io/crates/loom) concurrency
//! model checker (the build environment has no crates.io access — see
//! `vendor/README.md`).
//!
//! The real loom exhaustively enumerates interleavings of a bounded
//! concurrent program under the C11 memory model. This shim keeps the
//! *API* — `loom::model`, `loom::thread`, `loom::sync` — so the model
//! tests in `crates/kernel/tests/loom.rs` compile unchanged, but checks
//! by **stress iteration**: each `model` body runs many times on real
//! host threads, relying on scheduler noise (plus explicit yields in the
//! bodies) to vary interleavings. That is strictly weaker than loom's
//! exhaustive search — it can miss rare orderings — which is why CI pairs
//! the `--cfg loom` lane with a nightly ThreadSanitizer run: the shim
//! checks protocol logic under concurrency, TSan checks the data-race
//! freedom claims the protocol makes.
//!
//! Swapping in the real crate requires only restoring the registry
//! dependency; the `loom::` paths used by the tests are identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// How many times each `model` body is stress-iterated.
///
/// Override with `LOOM_MAX_PREEMPTIONS`' sibling knob `LOOM_SHIM_ITERS`
/// (the real loom's iteration knobs don't map onto stress runs).
fn iterations() -> usize {
    std::env::var("LOOM_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400)
}

/// Runs `f` under the (stress) model checker.
///
/// The real loom explores interleavings exhaustively; the shim re-runs
/// the body [`iterations`] times. A panic in any iteration fails the
/// test, like a failed loom branch.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..iterations() {
        f();
    }
}

/// Mirror of `loom::thread` — real host threads in the shim.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Mirror of `loom::sync` — std primitives in the shim (loom's API is
/// deliberately identical to std's, including lock poisoning).
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    /// Mirror of `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_bodies_with_threads() {
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h2 = std::sync::Arc::clone(&hits);
        std::env::set_var("LOOM_SHIM_ITERS", "3");
        super::model(move || {
            let c = std::sync::Arc::clone(&h2);
            let t = super::thread::spawn(move || {
                c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
            t.join().unwrap();
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 3);
        std::env::remove_var("LOOM_SHIM_ITERS");
    }
}
