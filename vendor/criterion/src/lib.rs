//! Std-only shim of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of criterion's API used by the workspace benches:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark body runs a calibration pass to pick
//! an iteration count that fills a short measurement window, then reports
//! mean wall-clock ns/iter on stdout. When the binary is invoked by
//! `cargo test` (which passes `--test`), every benchmark body runs exactly
//! once so benches double as smoke tests.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measured sample.
const MEASURE_WINDOW: Duration = Duration::from_millis(20);

/// Identifies a benchmark within a group, mirroring criterion's
/// `function_name/parameter` naming.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing context handed to benchmark bodies.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(group: &str, id: &str, smoke: bool, routine: &mut dyn FnMut(&mut Bencher)) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b); // calibration (and the smoke-test run)
    if smoke {
        println!("bench {label}: ok (smoke)");
        return;
    }
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (MEASURE_WINDOW.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;
    b.iters = iters;
    routine(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / iters as f64;
    println!("bench {label}: {ns:.0} ns/iter ({iters} iters)");
}

/// Whether the binary was invoked by `cargo test` rather than
/// `cargo bench`.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Benches a standalone function.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        run_one("", &id.into().id, smoke_mode(), &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benches `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        run_one(&self.name, &id.into().id, smoke_mode(), &mut f);
    }

    /// Benches `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&self.name, &id.into().id, smoke_mode(), &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_elapsed_for_requested_iters() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
        assert!(b.elapsed > Duration::ZERO || count == 10);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("dsatur", 12).id, "dsatur/12");
        assert_eq!(BenchmarkId::from_parameter("x1").id, "x1");
    }
}
