//! Counterfactual experiments: test the paper's *causal explanations*,
//! not just its numbers.
//!
//! §4 explains Figure 5's surprise — merging the network stack and
//! scheduler into one compartment does not help — by the semaphores
//! living in LibC, and says "this brings the need for further
//! compartmentalization or redesign of the components". If that
//! explanation is right, *relocating the semaphore service into the
//! network stack's compartment* should make the merge pay off. Our
//! reproduction is mechanistic enough to run that experiment.

use flexos::build::{plan, BackendChoice};
use flexos::gate::CompartmentId;
use flexos_apps::iperf::IperfParams;
use flexos_apps::{evaluation_image, CompartmentModel, Os, SchedKind};
use flexos_kernel::exec::{Executor, Step};
use flexos_kernel::sched::CoopScheduler;
use flexos_net::nic::Link;
use flexos_net::stack::NetError;
use std::cell::Cell;
use std::rc::Rc;

const SERVER_IP: u32 = 0x0a00_0001;

/// Runs iperf on a pre-built `Os` (so we can tweak it before driving
/// load). Mirrors `flexos_apps::iperf::run_iperf`'s measurement loop.
fn run_on(mut os: Os, params: &IperfParams) -> f64 {
    use flexos_apps::client::{exchange, Client};
    let mut exec: Executor<Os> = Executor::new(Box::new(CoopScheduler::new()));
    let mut client = Client::new(2).unwrap();
    let mut link = Link::new();

    let received = Rc::new(Cell::new(0u64));
    let received_task = Rc::clone(&received);
    let listener = os.listen(5201).expect("listen");
    let recv_buf_len = params.recv_buf;
    let app_buf = os.alloc_shared_buf(recv_buf_len.max(64)).expect("buffer");
    let c_app = os.roles.app;
    let mut sid = None;
    exec.spawn(
        c_app,
        Box::new(move |os: &mut Os, tid| {
            if sid.is_none() {
                match os.accept(listener) {
                    Ok(Some(s)) => sid = Some(s),
                    Ok(None) => return Ok(Step::Yield),
                    Err(e) => panic!("accept: {e}"),
                }
            }
            let s = sid.unwrap();
            for _ in 0..8 {
                match os.recv(s, app_buf, recv_buf_len) {
                    Ok(0) => return Ok(Step::Done),
                    Ok(n) => received_task.set(received_task.get() + n),
                    Err(NetError::WouldBlock) => match os.wait_readable(tid, s)? {
                        Some(ch) => return Ok(Step::Block(ch)),
                        None => continue,
                    },
                    Err(e) => panic!("recv: {e}"),
                }
            }
            Ok(Step::Yield)
        }),
    )
    .unwrap();

    let csid = client.connect(5201).unwrap();
    for _ in 0..8 {
        client.poll().unwrap();
        exchange(&mut link, &mut client, &mut os);
        os.poll_net().unwrap();
        exec.run(&mut os, 16).unwrap();
        exchange(&mut link, &mut client, &mut os);
    }
    assert!(client.established(csid));

    let start = os.img.machine.clock().cycles();
    let mut guard = 0u32;
    while received.get() < params.total_bytes {
        client.pump_zeroes(csid, 32 * 1024).unwrap();
        client.poll().unwrap();
        exchange(&mut link, &mut client, &mut os);
        os.poll_net().unwrap();
        exec.run(&mut os, 64).unwrap();
        os.poll_net().unwrap();
        exchange(&mut link, &mut client, &mut os);
        guard += 1;
        assert!(guard < 200_000, "stalled");
    }
    flexos_machine::throughput_mbps(received.get(), os.img.machine.clock().cycles() - start)
}

fn boot(model: CompartmentModel) -> Os {
    let cfg = evaluation_image("iperf", model, BackendChoice::MpkShared, SchedKind::Coop);
    Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap()
}

#[test]
fn relocating_semaphores_makes_the_nw_sched_merge_pay_off() {
    let params = IperfParams {
        recv_buf: 256,
        total_bytes: 256 * 1024,
        ..IperfParams::default()
    };

    // Paper layout: semaphores in libc. Merging NW+sched is pointless.
    let merged_sems_in_libc = run_on(boot(CompartmentModel::NwAndSchedRest), &params);
    let split_sems_in_libc = run_on(boot(CompartmentModel::NwSchedRest), &params);
    assert!(
        (merged_sems_in_libc - split_sems_in_libc).abs() / split_sems_in_libc < 0.02,
        "with semaphores in libc the merge must not help \
         (merged {merged_sems_in_libc:.0} vs split {split_sems_in_libc:.0} Mb/s)"
    );

    // Counterfactual: redesign moves the semaphore service into the
    // network compartment. Now the merged model's mbox ops are local.
    let mut os = boot(CompartmentModel::NwAndSchedRest);
    os.relocate_semaphores(os.roles.net);
    let merged_sems_in_net = run_on(os, &params);
    assert!(
        merged_sems_in_net > merged_sems_in_libc * 1.05,
        "relocated semaphores must make the merge pay off \
         (relocated {merged_sems_in_net:.0} vs libc {merged_sems_in_libc:.0} Mb/s)"
    );
}

#[test]
fn relocated_semaphores_do_not_help_the_split_model() {
    // Control: in NW/Sched/Rest (stack and scheduler apart), moving the
    // semaphores into the stack compartment relocates rather than
    // removes the crossing pattern — the gain should be much smaller
    // than for the merged model.
    let params = IperfParams {
        recv_buf: 256,
        total_bytes: 256 * 1024,
        ..IperfParams::default()
    };
    let libc_sems = run_on(boot(CompartmentModel::NwSchedRest), &params);
    let mut os = boot(CompartmentModel::NwSchedRest);
    os.relocate_semaphores(os.roles.net);
    let net_sems = run_on(os, &params);

    let mut merged = boot(CompartmentModel::NwAndSchedRest);
    merged.relocate_semaphores(merged.roles.net);
    let merged_net_sems = run_on(merged, &params);

    assert!(
        merged_net_sems > net_sems,
        "with semaphores in the stack, merging sched in finally matters \
         ({merged_net_sems:.0} vs {net_sems:.0} Mb/s)"
    );
    let _ = libc_sems;
}

#[test]
fn sem_home_defaults_to_libc() {
    let os = boot(CompartmentModel::NwSchedRest);
    // The default layout is the paper's: touching a socket crosses into
    // libc for the mbox op (observable via the sem-op counter + gate
    // crossings tested elsewhere); here we just pin the default wiring.
    assert_eq!(os.roles.libc, CompartmentId(0));
    assert_ne!(os.roles.net, os.roles.libc);
}
