//! End-to-end `flexos-inject` integration: chaos plans drive real
//! recovery paths, injected faults land in the trace layer, and the
//! whole pipeline is a pure function of the seed.

use flexos::gate::{CompartmentCtx, CompartmentId, Gate};
use flexos::spec::ShSet;
use flexos_backends::vmrpc::{RetryPolicy, VmRpcGate};
use flexos_machine::{
    ChaosConfig, ChaosPlan, Fault, Machine, PageFlags, Pkru, ProtKey, Schedule, VcpuId, VmId,
};
use flexos_trace::TraceRegistry;

fn rpc_world() -> (Machine, VmRpcGate, CompartmentCtx, CompartmentCtx) {
    let mut m = Machine::with_defaults();
    let vm1 = m.add_vm(false);
    let vcpu1 = m.add_vcpu(vm1);
    let rpc_base = m
        .alloc_shared_region(VmRpcGate::area_bytes(2), ProtKey(0))
        .unwrap();
    let gate = VmRpcGate::new(rpc_base, 2);
    let heap0 = m
        .alloc_region(VmId(0), 4096, ProtKey(0), PageFlags::RW)
        .unwrap();
    let heap1 = m
        .alloc_region(vm1, 4096, ProtKey(0), PageFlags::RW)
        .unwrap();
    let ctx = |id, name: &str, vm, vcpu, heap| CompartmentCtx {
        id: CompartmentId(id),
        name: name.into(),
        vm,
        vcpu,
        pkru: Pkru::ALLOW_ALL,
        keys: vec![],
        sh: ShSet::none(),
        heap_base: heap,
        heap_size: 4096,
    };
    let c0 = ctx(0, "rest", VmId(0), VcpuId(0), heap0);
    let c1 = ctx(1, "net", vm1, vcpu1, heap1);
    (m, gate, c0, c1)
}

#[test]
fn injected_doorbell_loss_is_recovered_and_traced() {
    let (mut m, gate, c0, c1) = rpc_world();
    m.set_chaos(ChaosPlan::new(ChaosConfig {
        seed: 42,
        notify_drop: Schedule::PerMille(300),
        ..Default::default()
    }));
    let mut ok = 0u64;
    let mut timeouts = 0u64;
    for _ in 0..200 {
        match gate.enter(&mut m, &c0, &c1, 32) {
            Ok(()) => ok += 1,
            Err(Fault::GateTimeout { mechanism, .. }) => {
                assert_eq!(mechanism, "vmrpc");
                timeouts += 1;
            }
            Err(e) => panic!("unexpected fault: {e}"),
        }
    }
    // At 30% loss and 5 attempts, the overwhelming majority recovers.
    assert!(ok > 190, "only {ok}/200 crossings recovered");
    let stats = m.chaos_stats().unwrap();
    assert!(stats.dropped_notifications > 0);
    // Injected faults are counted in the machine's fault trace...
    assert_eq!(
        m.fault_trace().count("injected-notify-drop"),
        stats.dropped_notifications
    );
    // ...and surface as `injected` events in a stats snapshot.
    let mut reg = TraceRegistry::new();
    reg.set_elapsed(m.clock().cycles());
    reg.add_faults(m.fault_trace(), |_| None);
    let snap = reg.finish();
    assert!(snap
        .fault_kinds
        .iter()
        .any(|r| r.kind == "injected-notify-drop" && r.count == stats.dropped_notifications));
    assert!(snap.events.iter().any(|e| e.kind == "injected"));
    // The snapshot's JSON carries the injected kinds too.
    assert!(snap.to_json().contains("injected-notify-drop"));
    let _ = timeouts;
}

#[test]
fn total_doorbell_loss_times_out_instead_of_hanging() {
    let (mut m, _gate, c0, c1) = rpc_world();
    // A gate with a tight custom retry budget over its own RPC area.
    let rpc_base = m
        .alloc_shared_region(VmRpcGate::area_bytes(2), ProtKey(0))
        .unwrap();
    let gate = VmRpcGate::with_retry(
        rpc_base,
        2,
        RetryPolicy {
            max_attempts: 3,
            backoff_base_cycles: 1_000,
        },
    );
    m.set_chaos(ChaosPlan::new(ChaosConfig {
        seed: 7,
        notify_drop: Schedule::EveryNth(1),
        ..Default::default()
    }));
    let t0 = m.clock().cycles();
    let err = gate.enter(&mut m, &c0, &c1, 8).unwrap_err();
    assert_eq!(
        err,
        Fault::GateTimeout {
            mechanism: "vmrpc",
            attempts: 3,
        }
    );
    // Backoff charged 1000 + 2000 cycles on top of the notify costs.
    assert!(m.clock().cycles() - t0 >= 3_000);
}

#[test]
fn chaos_pipeline_is_a_pure_function_of_the_seed() {
    let run = |seed: u64| -> (u64, u64, String) {
        let (mut m, gate, c0, c1) = rpc_world();
        m.set_chaos(ChaosPlan::new(ChaosConfig {
            seed,
            notify_drop: Schedule::PerMille(400),
            spurious_pkey: Schedule::PerMille(20),
            ..Default::default()
        }));
        let mut ok = 0u64;
        for _ in 0..100 {
            if gate.enter(&mut m, &c0, &c1, 16).is_ok() {
                ok += 1;
            }
        }
        let mut reg = TraceRegistry::new();
        reg.set_elapsed(m.clock().cycles());
        reg.add_faults(m.fault_trace(), |_| None);
        (ok, m.clock().cycles(), reg.finish().to_json())
    };
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a, b, "same seed must replay the same world");
    let c = run(5678);
    assert_ne!(a.1, c.1, "different seeds should diverge");
}

#[test]
fn disabling_chaos_restores_the_exact_baseline() {
    let run = |with_idle_chaos: bool| -> u64 {
        let (mut m, gate, c0, c1) = rpc_world();
        if with_idle_chaos {
            // A plan with every schedule Off must be invisible.
            m.set_chaos(ChaosPlan::new(ChaosConfig::with_seed(99)));
        }
        for _ in 0..50 {
            gate.enter(&mut m, &c0, &c1, 64).unwrap();
            gate.exit(&mut m, &c1, &c0, 16).unwrap();
        }
        m.clock().cycles()
    };
    assert_eq!(run(false), run(true));
}

/// A live backend migration under active chaos is still a pure function
/// of the seed: two same-seed runs that escalate MPK → VM RPC mid-way
/// through a chaos-injected call sequence produce byte-identical stats
/// JSON — migrations block included.
#[test]
fn migration_under_chaos_is_byte_identical_for_the_same_seed() {
    use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
    use flexos::gate::{MigrationReason, Sqe};
    use flexos::spec::LibSpec;
    use flexos_backends::{instantiate_migratable, migrate_all};
    use flexos_trace::MigrationsSnapshot;

    let run = |seed: u64| -> String {
        let cfg = ImageConfig::new("chaos-mig", BackendChoice::MpkShared)
            .with_library(LibraryConfig::new(
                LibSpec::verified_scheduler(),
                LibRole::Scheduler,
            ))
            .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
        let mut img = instantiate_migratable(plan(cfg).unwrap(), BackendChoice::MpkShared).unwrap();
        img.machine.set_chaos(ChaosPlan::new(ChaosConfig {
            seed,
            notify_drop: Schedule::PerMille(300),
            spurious_pkey: Schedule::PerMille(20),
            ..Default::default()
        }));
        let cross = |img: &mut flexos_backends::BootImage| {
            let _ = img.call_lib("uksched_verified", 16, 8, |m, _| {
                m.charge(10);
                Ok(0i64)
            });
        };
        for _ in 0..20 {
            cross(&mut img);
        }
        for ud in 0..3u64 {
            img.submit_lib("uksched_verified", Sqe::new(8, 8, ud))
                .unwrap();
        }
        migrate_all(&mut img, BackendChoice::VmRpc, MigrationReason::Escalate).unwrap();
        for _ in 0..20 {
            cross(&mut img);
        }
        let _ = img.call_lib_async("uksched_verified", |m, _, _| {
            m.charge(5);
            Ok(1)
        });
        let mut reg = TraceRegistry::new();
        reg.set_elapsed(img.machine.clock().cycles());
        reg.add_faults(img.machine.fault_trace(), |_| None);
        let mg = img.gates.migration_stats();
        reg.add_migrations(MigrationsSnapshot {
            requested: mg.requested,
            completed: mg.completed,
            deferred: mg.deferred,
            rejected_submits: mg.rejected_submits,
            requeued_sqes: mg.requeued_sqes,
            preserved_cqes: mg.preserved_cqes,
            drain_cycles_total: mg.drain_cycles_total,
            drain_cycles_max: mg.drain_cycles_max,
            escalations: mg.escalations,
            relaxations: mg.relaxations,
        });
        reg.finish().to_json()
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(
        a, b,
        "same seed + same migration must replay byte-identically"
    );
    assert!(a.contains("\"migrations\":{"));
    assert!(a.contains("\"escalations\":1"));
    let c = run(5678);
    assert_ne!(a, c, "different seeds should diverge");
}

/// Doorbell loss injected *while a pair drains* neither loses nor
/// duplicates a descriptor: pending submissions re-issue through the
/// new backend, already-posted completions stay reapable, and every
/// cookie comes back exactly once, in order.
#[test]
fn doorbell_loss_during_drain_loses_no_descriptor() {
    use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
    use flexos::gate::{MigrationReason, Sqe};
    use flexos::spec::LibSpec;
    use flexos_backends::{instantiate_migratable, migrate_all};

    let cfg = ImageConfig::new("chaos-drain", BackendChoice::VmRpc)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
    let mut img = instantiate_migratable(plan(cfg).unwrap(), BackendChoice::VmRpc).unwrap();
    // Lossy, duplicating doorbells for the entire drain window. Loss
    // stays under the retry budget so crossings recover.
    img.machine.set_chaos(ChaosPlan::new(ChaosConfig {
        seed: 7,
        notify_drop: Schedule::EveryNth(2),
        notify_dup: Schedule::EveryNth(3),
        ..Default::default()
    }));
    for ud in 0..6u64 {
        img.submit_lib("uksched_verified", Sqe::new(8, 8, ud))
            .unwrap();
    }
    // Flush half under chaos, leaving three descriptors pending.
    let target = img.compartment_of_lib("uksched_verified").unwrap();
    let mut seen = 0;
    img.gates
        .flush_async_until(
            &mut img.machine,
            target,
            |m, _, sqe| {
                m.charge(1);
                Ok(sqe.user_data as i64)
            },
            |_, _, _, _| {
                seen += 1;
                Ok(seen < 3)
            },
        )
        .unwrap();
    // The swap away from VM RPC drains the doorbell backlog (including
    // chaos-duplicated rings) and carries the ring across.
    migrate_all(
        &mut img,
        BackendChoice::MpkShared,
        MigrationReason::Escalate,
    )
    .unwrap();
    let st = img.gates.migration_stats();
    assert_eq!((st.requeued_sqes, st.preserved_cqes), (3, 3));
    let flushed = img
        .call_lib_async("uksched_verified", |m, _, sqe| {
            m.charge(1);
            Ok(sqe.user_data as i64)
        })
        .unwrap();
    assert_eq!(flushed, 3, "a pending descriptor was lost in the drain");
    let mut got = Vec::new();
    while let Ok(cqe) = img.reap_lib("uksched_verified") {
        got.push(cqe.user_data);
    }
    assert_eq!(
        got,
        vec![0, 1, 2, 3, 4, 5],
        "loss or duplication across the swap"
    );
}
