//! Cross-backend differential suite for batched gate crossings.
//!
//! The same random call sequences — varying argument/return sizes,
//! synthetic faulting calls, nested crossings and chaos-injected
//! doorbell loss — are pushed through every gate mechanism (direct
//! call, MPK shared/switched stacks, VM RPC, CHERI). The backends must
//! agree on everything except cycle cost: per-call return values, fault
//! kinds, crossing/direct-call/marshalled-byte counters and the
//! batch-size histogram. Separately, each backend must be *bit*
//! identical — cycles included — between `batch_enabled` on and off,
//! which is the equivalence contract the batching fast path ships
//! under (ISSUE: figure output and `--stats` counters may not move).

use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::gate::{CallVec, GateMechanism};
use flexos::spec::LibSpec;
use flexos_backends::{instantiate, BootImage};
use flexos_machine::{ChaosConfig, ChaosPlan, Fault, Schedule};
use proptest::prelude::*;

/// Every gate mechanism the build system can target.
const BACKENDS: &[BackendChoice] = &[
    BackendChoice::None,
    BackendChoice::MpkShared,
    BackendChoice::MpkSwitched,
    BackendChoice::VmRpc,
    BackendChoice::Cheri,
];

/// One call in a generated sequence.
#[derive(Debug, Clone)]
struct CallOp {
    /// Cross into the scheduler compartment (a real gate crossing) or
    /// into lwip (same compartment as the app — a direct call).
    sched: bool,
    arg: u64,
    ret: u64,
    /// The call body returns a synthetic typed fault.
    fail: bool,
    /// The call body issues a nested crossing back the other way.
    nested: bool,
}

fn arb_ops() -> impl Strategy<Value = Vec<CallOp>> {
    prop::collection::vec(
        (any::<bool>(), 0u64..48, 0u64..24, 0u32..6, 0u32..4).prop_map(
            |(sched, arg, ret, fail, nested)| CallOp {
                sched,
                arg,
                ret,
                fail: fail == 0,
                nested: nested == 0,
            },
        ),
        1..10,
    )
}

/// Optional chaos: doorbell loss `EveryNth(2..=4)` and/or duplication
/// `EveryNth(2..=3)`. Loss rates are kept under 100% so the PR-3 retry
/// budget (5 attempts) always recovers; backends that never ring
/// doorbells simply never draw from the schedule.
fn arb_chaos() -> impl Strategy<Value = Option<(u64, u64)>> {
    prop::option::of((2u64..=4, 0u64..=3))
}

/// What a sequence observably did, minus cycle costs.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    /// Per chunk: the per-call values, or the fault kind that ended it.
    chunks: Vec<Result<Vec<i64>, &'static str>>,
    crossings: u64,
    direct_calls: u64,
    bytes_marshalled: u64,
    /// Batch-size histogram totals summed over all mechanisms.
    batches: u64,
    batched_calls: u64,
}

fn image(backend: BackendChoice) -> BootImage {
    image_smp(backend, 0)
}

/// Boots the standard equivalence image, then attaches `extra_vcpus`
/// additional vCPUs to the boot VM — the SMP topology `--vcpus 2` runs
/// on. Gate crossings address compartments by their *assigned* vCPU, so
/// the extra ones must be observably inert (the property
/// `extra_vcpus_are_invisible_to_every_backend` checks, cycles
/// included).
fn image_smp(backend: BackendChoice, extra_vcpus: usize) -> BootImage {
    let cfg = ImageConfig::new("equiv", backend)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(LibraryConfig::new(
            LibSpec::unsafe_c("lwip"),
            LibRole::NetStack,
        ))
        .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
    let mut img = instantiate(plan(cfg).expect("plans")).expect("boots");
    img.machine.add_vcpus(flexos_machine::VmId(0), extra_vcpus);
    img
}

/// Deterministic per-call value so every backend must compute the same
/// answer from the same inputs.
fn call_value(op: &CallOp, idx: usize) -> i64 {
    (op.arg * 31 + op.ret * 7) as i64 + idx as i64
}

/// Runs `ops` through one backend, batching runs of consecutive calls
/// with the same target (the shape RESP pipelining and iperf TX
/// produce), and collects the observable outcome plus total cycles.
fn run(
    backend: BackendChoice,
    ops: &[CallOp],
    chaos: Option<(u64, u64)>,
    batch: bool,
) -> (Outcome, u64) {
    run_smp(backend, ops, chaos, batch, 0)
}

/// [`run`], on an image with `extra_vcpus` additional vCPUs attached.
fn run_smp(
    backend: BackendChoice,
    ops: &[CallOp],
    chaos: Option<(u64, u64)>,
    batch: bool,
    extra_vcpus: usize,
) -> (Outcome, u64) {
    let mut img = image_smp(backend, extra_vcpus);
    if let Some((drop_nth, dup_nth)) = chaos {
        img.machine.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 11,
            notify_drop: Schedule::EveryNth(drop_nth),
            notify_dup: if dup_nth >= 2 {
                Schedule::EveryNth(dup_nth)
            } else {
                Schedule::Off
            },
            ..Default::default()
        }));
    }
    img.gates.set_batch_enabled(batch);
    let sched_c = img.compartment_of_lib("uksched_verified").expect("sched");
    let lwip_c = img.compartment_of_lib("lwip").expect("lwip");
    let t0 = img.machine.clock().cycles();

    let mut chunks = Vec::new();
    let mut i = 0usize;
    while i < ops.len() {
        // A chunk is a maximal run of calls into the same target.
        let sched = ops[i].sched;
        let mut end = i + 1;
        while end < ops.len() && ops[end].sched == sched {
            end += 1;
        }
        let chunk = &ops[i..end];
        let mut calls = CallVec::new();
        for op in chunk {
            calls.push(op.arg, op.ret);
        }
        let lib = if sched { "uksched_verified" } else { "lwip" };
        let nested_target = if sched { lwip_c } else { sched_c };
        let r = img.call_lib_batch(lib, &calls, |m, rt, idx| {
            let op = &chunk[idx];
            if op.nested {
                rt.cross(m, nested_target, 8, 8, |m, _| {
                    m.charge(3);
                    Ok(())
                })?;
            }
            if op.fail {
                return Err(Fault::HardeningAbort {
                    mechanism: "equiv-test",
                    reason: format!("synthetic fault at call {idx}"),
                });
            }
            m.charge(op.arg + 1);
            Ok(call_value(op, idx))
        });
        chunks.push(r.map_err(|e| e.kind()));
        i = end;
    }

    let cycles = img.machine.clock().cycles() - t0;
    let stats = img.gates.stats();
    let (mut batches, mut batched_calls) = (0u64, 0u64);
    for mech in [
        GateMechanism::DirectCall,
        GateMechanism::MpkSharedStack,
        GateMechanism::MpkSwitchedStack,
        GateMechanism::VmRpc,
        GateMechanism::Cheri,
    ] {
        if let Some(h) = img.gates.trace().batch_hist(mech.label()) {
            batches += h.count();
            batched_calls += h.sum();
        }
    }
    (
        Outcome {
            chunks,
            crossings: stats.crossings,
            direct_calls: stats.direct_calls,
            bytes_marshalled: stats.bytes_marshalled,
            batches,
            batched_calls,
        },
        cycles,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every isolating backend observes the same returns, faults and
    /// counters for the same call sequence; only cycle costs may
    /// differ. The non-isolating `None` backend must still agree on
    /// every return value, fault kind and batch shape, but its gates
    /// are plain function calls: crossings degrade to direct calls and
    /// nothing is marshalled.
    #[test]
    fn backends_agree_on_everything_but_cycles(ops in arb_ops(), chaos in arb_chaos()) {
        let (reference, _) = run(BackendChoice::MpkShared, &ops, chaos, true);
        for &backend in BACKENDS {
            if backend == BackendChoice::MpkShared {
                continue;
            }
            let (outcome, _) = run(backend, &ops, chaos, true);
            if backend == BackendChoice::None {
                prop_assert_eq!(
                    &outcome.chunks, &reference.chunks,
                    "{:?} returns/faults diverged", backend
                );
                prop_assert_eq!(
                    (outcome.batches, outcome.batched_calls),
                    (reference.batches, reference.batched_calls),
                    "{:?} batch shape diverged", backend
                );
                prop_assert_eq!(
                    outcome.crossings + outcome.direct_calls,
                    reference.crossings + reference.direct_calls,
                    "{:?} total call count diverged", backend
                );
                prop_assert_eq!(outcome.crossings, 0, "ptr gates never isolate");
                prop_assert_eq!(outcome.bytes_marshalled, 0, "ptr gates never marshal");
            } else {
                prop_assert_eq!(
                    &outcome, &reference,
                    "backend {:?} diverged from MpkShared", backend
                );
            }
        }
    }

    /// The `--vcpus 2` machine topology: extra vCPUs attached to the
    /// boot VM are observably inert for every backend — same returns,
    /// faults, counters AND the same simulated cycle count. Gates
    /// address compartments by their assigned vCPU, so an idle sibling
    /// must never perturb a crossing (notably VM RPC, whose doorbells
    /// target a vCPU's VM).
    #[test]
    fn extra_vcpus_are_invisible_to_every_backend(ops in arb_ops(), chaos in arb_chaos()) {
        for &backend in BACKENDS {
            let (base, base_cycles) = run_smp(backend, &ops, chaos, true, 0);
            let (smp, smp_cycles) = run_smp(backend, &ops, chaos, true, 1);
            prop_assert_eq!(
                &base, &smp,
                "{:?} outcome diverged with an extra vCPU", backend
            );
            prop_assert_eq!(
                base_cycles, smp_cycles,
                "{:?} cycles diverged with an extra vCPU", backend
            );
        }
    }

    /// Within one backend, `batch_enabled` on vs off is bit-identical:
    /// same outcome AND the same simulated cycle count.
    #[test]
    fn batching_is_cycle_identical_per_backend(ops in arb_ops(), chaos in arb_chaos()) {
        for &backend in BACKENDS {
            let (on, cycles_on) = run(backend, &ops, chaos, true);
            let (off, cycles_off) = run(backend, &ops, chaos, false);
            prop_assert_eq!(&on, &off, "{:?} outcome diverged", backend);
            prop_assert_eq!(
                cycles_on, cycles_off,
                "{:?} cycles diverged between batch on/off", backend
            );
        }
    }
}

/// 100% doorbell loss exhausts the retry budget with the same typed
/// fault whether or not the crossing is batched.
#[test]
fn total_doorbell_loss_times_out_identically_batched_or_not() {
    for batch in [false, true] {
        let mut img = image(BackendChoice::VmRpc);
        img.machine.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 1,
            notify_drop: Schedule::EveryNth(1),
            ..Default::default()
        }));
        img.gates.set_batch_enabled(batch);
        let calls = CallVec::uniform(4, 16, 8);
        let err = img
            .call_lib_batch("uksched_verified", &calls, |_, _, _| Ok(()))
            .unwrap_err();
        assert!(
            matches!(err, Fault::GateTimeout { attempts: 5, .. }),
            "batch={batch}: {err:?}"
        );
    }
}
