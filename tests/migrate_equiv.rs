//! Differential suite for live gate-backend migration.
//!
//! The contract under test: a run that *migrates* to a backend at
//! runtime is observably equivalent to a run *built* with that backend
//! from the start. Concretely, for every ordered (from, to) pair of the
//! five mechanisms, a random call sequence split at a random point —
//! head on `from`, `migrate_all`, tail on `to` — must produce
//!
//! * the same per-call returns and fault kinds as the same sequence on
//!   a never-migrated image (results never depend on the backend), and
//! * a tail whose crossing/direct-call/marshalled-byte deltas are
//!   *identical* to the tail of a `to`-built run split at the same
//!   point (the migrated pair is indistinguishable from a booted one).
//!
//! Cycle costs legitimately differ across backends, so the cross-pair
//! claims exclude them; within one (from, to) pair, batching on vs off
//! must stay bit-identical — cycles included — across the mid-sequence
//! swap, and the async ring must carry its queued descriptors through
//! the swap without loss, duplication or reordering. A drain-starvation
//! regression test pins the admission stop: a continuous submitter
//! hammering a draining pair is refused with `GateDraining` and cannot
//! stall the swap.
//!
//! All images boot through `instantiate_migratable`, whose superset
//! topology (keys, VM-RPC inbox area, dedicated allocators) is
//! byte-identical regardless of the boot backend — which is what makes
//! the head/tail stat comparison exact rather than approximate.

use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::gate::{CallVec, MigrationReason, Sqe};
use flexos::spec::LibSpec;
use flexos_backends::{instantiate_migratable, migrate_all, prepare_pair_migration, BootImage};
use flexos_machine::{ChaosConfig, ChaosPlan, Fault, Schedule};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Every gate mechanism the build system can target.
const BACKENDS: &[BackendChoice] = &[
    BackendChoice::None,
    BackendChoice::MpkShared,
    BackendChoice::MpkSwitched,
    BackendChoice::VmRpc,
    BackendChoice::Cheri,
];

/// One call in a generated sequence (see `tests/backend_equiv.rs`).
#[derive(Debug, Clone)]
struct CallOp {
    /// Cross into the scheduler compartment (a real gate crossing) or
    /// into the netstack lib colocated with the app (a direct call).
    sched: bool,
    arg: u64,
    ret: u64,
    /// The call body returns a synthetic typed fault.
    fail: bool,
}

fn arb_ops() -> impl Strategy<Value = Vec<CallOp>> {
    prop::collection::vec(
        (any::<bool>(), 0u64..48, 0u64..24, 0u32..6).prop_map(|(sched, arg, ret, fail)| CallOp {
            sched,
            arg,
            ret,
            fail: fail == 0,
        }),
        1..10,
    )
}

/// Optional chaos: doorbell loss `EveryNth(2..=4)` and/or duplication
/// `EveryNth(2..=3)`, seeded so every compared run draws the same
/// schedule. Loss stays under 100% so the retry budget recovers.
fn arb_chaos() -> impl Strategy<Value = Option<(u64, u64)>> {
    prop::option::of((2u64..=4, 0u64..=3))
}

/// What one segment (head or tail) of a run observably did, minus
/// cycles: per-chunk results/fault kinds plus the stat *deltas* the
/// segment produced.
#[derive(Debug, Clone, PartialEq)]
struct SegOutcome {
    chunks: Vec<Result<Vec<i64>, &'static str>>,
    crossings: u64,
    direct_calls: u64,
    bytes_marshalled: u64,
}

/// The migratable equivalence image: identical layout for every boot
/// backend (single VM, keys and the VM-RPC inbox always present).
fn image(from: BackendChoice, chaos: Option<(u64, u64)>, batch: bool) -> BootImage {
    let cfg = ImageConfig::new("migrate-equiv", BackendChoice::MpkShared)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(LibraryConfig::new(
            LibSpec::unsafe_c("lwip"),
            LibRole::NetStack,
        ))
        .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
    let mut img = instantiate_migratable(plan(cfg).expect("plans"), from).expect("boots");
    if let Some((drop_nth, dup_nth)) = chaos {
        img.machine.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 11,
            notify_drop: Schedule::EveryNth(drop_nth),
            notify_dup: if dup_nth >= 2 {
                Schedule::EveryNth(dup_nth)
            } else {
                Schedule::Off
            },
            ..Default::default()
        }));
    }
    img.gates.set_batch_enabled(batch);
    img
}

/// Deterministic per-call value so every configuration must compute the
/// same answer from the same inputs.
fn call_value(op: &CallOp, idx: usize) -> i64 {
    (op.arg * 31 + op.ret * 7) as i64 + idx as i64
}

/// Runs `ops` through `img` (batching maximal same-target runs, the
/// shape RESP pipelining produces) and returns the segment's outcome.
fn run_segment(img: &mut BootImage, ops: &[CallOp]) -> SegOutcome {
    let s0 = img.gates.stats();
    let mut chunks = Vec::new();
    let mut i = 0usize;
    while i < ops.len() {
        let sched = ops[i].sched;
        let mut end = i + 1;
        while end < ops.len() && ops[end].sched == sched {
            end += 1;
        }
        let chunk = &ops[i..end];
        let mut calls = CallVec::new();
        for op in chunk {
            calls.push(op.arg, op.ret);
        }
        let lib = if sched { "uksched_verified" } else { "lwip" };
        let r = img.call_lib_batch(lib, &calls, |m, _, idx| {
            let op = &chunk[idx];
            if op.fail {
                return Err(Fault::HardeningAbort {
                    mechanism: "migrate-equiv",
                    reason: format!("synthetic fault at call {idx}"),
                });
            }
            m.charge(op.arg + 1);
            Ok(call_value(op, idx))
        });
        chunks.push(r.map_err(|e| e.kind()));
        i = end;
    }
    let s1 = img.gates.stats();
    SegOutcome {
        chunks,
        crossings: s1.crossings - s0.crossings,
        direct_calls: s1.direct_calls - s0.direct_calls,
        bytes_marshalled: s1.bytes_marshalled - s0.bytes_marshalled,
    }
}

/// Boots on `from`, runs `ops[..k]`, live-migrates every pair to `to`,
/// runs `ops[k..]`. Returns (head, tail, total cycles). The `to == from`
/// case still performs the swap, so reference runs share the exact
/// migration machinery (and its — zero — cycle cost) with migrated
/// runs.
fn run_migrated(
    from: BackendChoice,
    to: BackendChoice,
    ops: &[CallOp],
    k: usize,
    chaos: Option<(u64, u64)>,
    batch: bool,
) -> (SegOutcome, SegOutcome, u64) {
    let mut img = image(from, chaos, batch);
    let t0 = img.machine.clock().cycles();
    let head = run_segment(&mut img, &ops[..k]);
    let (_, deferred) = migrate_all(&mut img, to, MigrationReason::Manual).expect("migrates");
    assert_eq!(deferred, 0, "quiescent between chunks: swaps are immediate");
    let tail = run_segment(&mut img, &ops[k..]);
    let cycles = img.machine.clock().cycles() - t0;
    (head, tail, cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole claim, all 5×5 ordered pairs, ± chaos: a run
    /// migrated at a random point returns the same values and faults as
    /// an un-migrated run, its head is stat-identical to a `from`-built
    /// run, and its tail is stat-identical to a `to`-built run split at
    /// the same point.
    #[test]
    fn migrated_runs_match_runs_built_with_the_target(
        ops in arb_ops(),
        split in 0usize..10,
        chaos in arb_chaos(),
    ) {
        for &from in BACKENDS {
            for &to in BACKENDS {
                let k = split.min(ops.len());
                let (head, tail, _) = run_migrated(from, to, &ops, k, chaos, true);
                // Reference runs: never actually change backend, but go
                // through the same (self-)migration at the same point.
                let (from_head, _, _) = run_migrated(from, from, &ops, k, chaos, true);
                let (_, to_tail, _) = run_migrated(to, to, &ops, k, chaos, true);
                prop_assert_eq!(
                    &head, &from_head,
                    "{:?}->{:?}: pre-swap head diverged from a {:?}-built run",
                    from, to, from
                );
                prop_assert_eq!(
                    &tail, &to_tail,
                    "{:?}->{:?}: post-swap tail diverged from a {:?}-built run",
                    from, to, to
                );
            }
        }
    }

    /// Batching on vs off stays bit-identical — cycles included —
    /// across a mid-sequence backend swap, for every ordered pair.
    #[test]
    fn batching_stays_cycle_identical_across_a_swap(
        ops in arb_ops(),
        split in 0usize..10,
        chaos in arb_chaos(),
    ) {
        for &from in BACKENDS {
            for &to in BACKENDS {
                let k = split.min(ops.len());
                let (h_on, t_on, c_on) = run_migrated(from, to, &ops, k, chaos, true);
                let (h_off, t_off, c_off) = run_migrated(from, to, &ops, k, chaos, false);
                prop_assert_eq!(&h_on, &h_off, "{:?}->{:?} head diverged", from, to);
                prop_assert_eq!(&t_on, &t_off, "{:?}->{:?} tail diverged", from, to);
                prop_assert_eq!(
                    c_on, c_off,
                    "{:?}->{:?} cycles diverged between batch on/off", from, to
                );
            }
        }
    }

    /// The async ring survives a mid-sequence swap: descriptors queued
    /// before the migration complete through the *new* backend without
    /// loss, duplication or reordering, and the completion values match
    /// a run built with the target from the start.
    #[test]
    fn queued_descriptors_survive_the_swap_in_order(
        uds in prop::collection::vec(0u64..1000, 1..6),
        chaos in arb_chaos(),
    ) {
        for &from in BACKENDS {
            for &to in BACKENDS {
                let run_async = |boot: BackendChoice, migrate: bool| {
                    let mut img = image(boot, chaos, true);
                    for (i, &ud) in uds.iter().enumerate() {
                        img.submit_lib("uksched_verified", Sqe::new(16, 8, ud))
                            .expect("pre-swap submission admitted");
                        let _ = i;
                    }
                    if migrate {
                        migrate_all(&mut img, to, MigrationReason::Manual).expect("migrates");
                    }
                    let flushed = img
                        .call_lib_async("uksched_verified", |m, _, sqe| {
                            m.charge(sqe.arg_bytes + 1);
                            Ok(sqe.user_data as i64 * 3)
                        })
                        .expect("flush completes");
                    let mut got = Vec::new();
                    while let Ok(cqe) = img.reap_lib("uksched_verified") {
                        got.push((cqe.user_data, cqe.res));
                    }
                    (flushed, got)
                };
                let (flushed, got) = run_async(from, true);
                let (ref_flushed, ref_got) = run_async(to, false);
                prop_assert_eq!(
                    flushed, ref_flushed,
                    "{:?}->{:?}: flush count diverged", from, to
                );
                prop_assert_eq!(
                    &got, &ref_got,
                    "{:?}->{:?}: completions diverged after the swap", from, to
                );
                prop_assert_eq!(got.len(), uds.len(), "a descriptor was lost or duplicated");
            }
        }
    }
}

/// Drain-starvation regression: a continuous submitter hammering a
/// draining pair is refused (`GateDraining`) on every attempt, cannot
/// delay the swap past the in-flight call it was waiting for, and the
/// drain's cycle cost stays bounded by that call's work — not by the
/// submission storm.
#[test]
fn continuous_submission_cannot_stall_quiescence() {
    let mut img = image(BackendChoice::MpkShared, None, true);
    let caller = img.gates.current();
    let target = img.compartment_of_lib("uksched_verified").expect("sched");
    let pair = if caller.0 <= target.0 {
        (caller, target)
    } else {
        (target, caller)
    };
    let mut planned = BTreeMap::new();
    planned.insert(pair, BackendChoice::VmRpc.mechanism());
    let (gate, re) =
        prepare_pair_migration(&mut img, pair.0, pair.1, BackendChoice::VmRpc, &planned)
            .expect("prepares");
    const STORM: u64 = 1_000;
    img.call_lib("uksched_verified", 8, 8, move |m, rt| {
        let applied =
            rt.request_migration(m, pair.0, pair.1, gate, MigrationReason::Escalate, Some(re))?;
        assert!(!applied, "the pair is mid-call; the swap must defer");
        // The storm: every submission onto the draining pair must be
        // refused — admission is what bounds the drain.
        let mut rejected = 0u64;
        for ud in 0..STORM {
            match rt.submit(pair.1, Sqe::new(8, 8, ud)) {
                Err(Fault::GateDraining { .. }) => rejected += 1,
                Ok(()) => panic!("submission {ud} slipped past the admission stop"),
                Err(e) => panic!("unexpected fault: {e}"),
            }
        }
        assert_eq!(rejected, STORM);
        m.charge(50);
        Ok(0i64)
    })
    .expect("the draining call itself completes");
    let st = img.gates.migration_stats();
    assert_eq!(st.completed, 1, "the storm stalled the swap");
    assert_eq!(st.rejected_submits, STORM);
    // Bounded drain: request → swap covers the in-flight call's own
    // work (charge + return leg), not anything proportional to STORM.
    assert!(
        st.drain_cycles_max > 0 && st.drain_cycles_max < 10_000,
        "drain latency {} not bounded by the in-flight call",
        st.drain_cycles_max
    );
    // The refused submitter can proceed after the swap.
    img.submit_lib("uksched_verified", Sqe::new(8, 8, 7))
        .expect("post-swap submission admitted");
    let flushed = img
        .call_lib_async("uksched_verified", |m, _, _| {
            m.charge(5);
            Ok(1)
        })
        .expect("post-swap flush completes");
    assert_eq!(flushed, 1);
}

/// Migration is exact about what it carries: completions already posted
/// stay reapable, pending submissions re-issue through the new gate —
/// across every ordered pair.
#[test]
fn every_pair_preserves_ready_cqes_and_requeues_pending_sqes() {
    for &from in BACKENDS {
        for &to in BACKENDS {
            let mut img = image(from, None, true);
            for ud in 0..4u64 {
                img.submit_lib("uksched_verified", Sqe::new(8, 8, ud))
                    .expect("submits");
            }
            // Flush the first two, keep two pending.
            let target = img.compartment_of_lib("uksched_verified").expect("sched");
            let mut seen = 0;
            img.gates
                .flush_async_until(
                    &mut img.machine,
                    target,
                    |m, _, sqe| {
                        m.charge(1);
                        Ok(sqe.user_data as i64)
                    },
                    |_, _, _, _| {
                        seen += 1;
                        Ok(seen < 2)
                    },
                )
                .expect("partial flush");
            migrate_all(&mut img, to, MigrationReason::Manual).expect("migrates");
            let st = img.gates.migration_stats();
            assert_eq!(
                (st.requeued_sqes, st.preserved_cqes),
                (2, 2),
                "{from:?}->{to:?}"
            );
            // Ready completions reap in order; pending ones complete
            // through the new gate.
            assert_eq!(
                img.reap_lib("uksched_verified").expect("cqe 0").user_data,
                0
            );
            assert_eq!(
                img.reap_lib("uksched_verified").expect("cqe 1").user_data,
                1
            );
            let flushed = img
                .call_lib_async("uksched_verified", |m, _, sqe| {
                    m.charge(1);
                    Ok(sqe.user_data as i64)
                })
                .expect("post-swap flush");
            assert_eq!(flushed, 2, "{from:?}->{to:?}");
            assert_eq!(
                img.reap_lib("uksched_verified").expect("cqe 2").user_data,
                2
            );
            assert_eq!(
                img.reap_lib("uksched_verified").expect("cqe 3").user_data,
                3
            );
        }
    }
}
