//! End-to-end integration: boot full FlexOS images under every backend
//! and run the evaluation applications against them.

use flexos::build::{plan, BackendChoice, Hypervisor};
use flexos_apps::iperf::{run_iperf, IperfParams};
use flexos_apps::redis::{run_redis, Mix, RedisParams};
use flexos_apps::{evaluation_image, CompartmentModel, Os, SchedKind};

const SERVER_IP: u32 = 0x0a00_0001;

fn boot(model: CompartmentModel, backend: BackendChoice) -> Os {
    let cfg = evaluation_image("iperf", model, backend, SchedKind::Coop);
    Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap()
}

#[test]
fn iperf_runs_on_every_backend() {
    for (model, backend) in [
        (CompartmentModel::Baseline, BackendChoice::None),
        (CompartmentModel::NwOnly, BackendChoice::MpkShared),
        (CompartmentModel::NwOnly, BackendChoice::MpkSwitched),
        (CompartmentModel::NwOnly, BackendChoice::VmRpc),
        (CompartmentModel::NwSchedRest, BackendChoice::MpkShared),
        (CompartmentModel::NwAndSchedRest, BackendChoice::MpkSwitched),
    ] {
        let r = run_iperf(&IperfParams {
            model,
            backend,
            total_bytes: 128 * 1024,
            ..IperfParams::default()
        });
        assert!(
            r.bytes >= 128 * 1024,
            "{model:?}/{backend:?} transferred {} bytes",
            r.bytes
        );
        assert!(r.mbps > 0.0);
    }
}

#[test]
fn redis_runs_on_every_backend() {
    for backend in [
        BackendChoice::MpkShared,
        BackendChoice::MpkSwitched,
        BackendChoice::VmRpc,
    ] {
        for mix in [Mix::Set, Mix::Get] {
            let r = run_redis(&RedisParams {
                model: CompartmentModel::NwOnly,
                backend,
                mix,
                ops: 200,
                ..RedisParams::default()
            })
            .expect("redis run");
            assert!(r.ops >= 200, "{backend:?}/{mix:?} completed {} ops", r.ops);
        }
    }
}

#[test]
fn redis_handles_all_payload_sizes_and_verified_sched() {
    for payload in [5usize, 50, 500] {
        let r = run_redis(&RedisParams {
            payload,
            sched: SchedKind::Verified,
            ops: 150,
            ..RedisParams::default()
        })
        .expect("redis run");
        assert!(r.ops >= 150);
    }
}

#[test]
fn xen_images_run_with_the_vm_backend() {
    let r = run_iperf(&IperfParams {
        model: CompartmentModel::NwOnly,
        backend: BackendChoice::VmRpc,
        hypervisor: Hypervisor::Xen,
        total_bytes: 64 * 1024,
        ..IperfParams::default()
    });
    assert!(r.bytes >= 64 * 1024);
}

#[test]
fn mpk_image_enforces_compartment_boundaries_in_vivo() {
    let mut os = boot(CompartmentModel::NwOnly, BackendChoice::MpkShared);
    // The net compartment's heap must be invisible from the app
    // compartment without a gate.
    let net_heap = os.img.gates.ctx(os.roles.net).heap_base;
    assert!(os.img.write(net_heap, b"attack").is_err());
    // And perfectly reachable through a gate.
    let c_net = os.roles.net;
    let flexos_backends::BootImage { machine, gates, .. } = &mut os.img;
    gates
        .cross(machine, c_net, 0, 0, |m, rt| {
            m.write(rt.current_ctx().vcpu, net_heap, b"legit!")
        })
        .unwrap();
}

#[test]
fn vm_image_gives_compartments_private_address_spaces() {
    let os = boot(CompartmentModel::NwOnly, BackendChoice::VmRpc);
    let app_vm = os.img.gates.ctx(os.roles.app).vm;
    let net_vm = os.img.gates.ctx(os.roles.net).vm;
    assert_ne!(app_vm, net_vm);
    assert!(os.img.machine.vm_count() >= 2);
}

#[test]
fn gate_crossings_scale_with_isolation_granularity() {
    let count = |model, backend| {
        run_iperf(&IperfParams {
            model,
            backend,
            total_bytes: 64 * 1024,
            recv_buf: 1024,
            ..IperfParams::default()
        })
        .crossings
    };
    let none = count(CompartmentModel::Baseline, BackendChoice::None);
    let nw = count(CompartmentModel::NwOnly, BackendChoice::MpkShared);
    let nw_sched = count(CompartmentModel::NwSchedRest, BackendChoice::MpkShared);
    assert_eq!(none, 0);
    assert!(nw > 0);
    assert!(
        nw_sched > nw,
        "finer compartments mean more crossings ({nw_sched} vs {nw})"
    );
}

#[test]
fn throughput_is_deterministic_across_runs() {
    let params = IperfParams {
        model: CompartmentModel::NwOnly,
        backend: BackendChoice::MpkShared,
        total_bytes: 64 * 1024,
        ..IperfParams::default()
    };
    let a = run_iperf(&params);
    let b = run_iperf(&params);
    assert_eq!(a.cycles, b.cycles, "simulation must be bit-deterministic");
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.crossings, b.crossings);
}
