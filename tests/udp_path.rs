//! UDP through the gated OS path: datagrams under every backend.

use flexos::build::{plan, BackendChoice};
use flexos_apps::client::{exchange, Client, SERVER_IP};
use flexos_apps::{evaluation_image, CompartmentModel, Os, SchedKind};
use flexos_machine::{Addr, VcpuId};
use flexos_net::nic::Link;

fn boot(backend: BackendChoice) -> Os {
    let model = if backend == BackendChoice::None {
        CompartmentModel::Baseline
    } else {
        CompartmentModel::NwOnly
    };
    let cfg = evaluation_image("iperf", model, backend, SchedKind::Coop);
    Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap()
}

fn udp_echo_round_trip(backend: BackendChoice) {
    let mut os = boot(backend);
    let mut client = Client::new(2).unwrap();
    let mut link = Link::new();

    let server_sock = os.udp_bind(7).unwrap();
    let rx = os.alloc_shared_buf(2048).unwrap();
    let tx = os.alloc_shared_buf(2048).unwrap();

    // Client fires a datagram at the echo port.
    let c_sock = client.net.udp_bind(40000).unwrap();
    client
        .m
        .write(client.vcpu, client.buf, b"udp-ping")
        .unwrap();
    client
        .net
        .udp_send_to(
            &mut client.m,
            client.vcpu,
            c_sock,
            client.buf,
            8,
            SERVER_IP,
            7,
        )
        .unwrap();
    client.poll().unwrap();
    exchange(&mut link, &mut client, &mut os);
    os.poll_net().unwrap();

    // Server receives through the gated path and echoes back.
    let (n, src_ip, src_port) = os.udp_recv_from(server_sock, rx, 2048).unwrap();
    assert_eq!(n, 8);
    let mut got = vec![0u8; n as usize];
    os.img.read(rx, &mut got).unwrap();
    assert_eq!(&got, b"udp-ping");
    os.img.write(tx, b"udp-pong").unwrap();
    os.udp_send_to(server_sock, tx, 8, src_ip, src_port)
        .unwrap();
    os.poll_net().unwrap();
    exchange(&mut link, &mut client, &mut os);
    client.poll().unwrap();

    // Client sees the echo.
    let (rn, rip, rport) = client
        .net
        .udp_recv_from(
            &mut client.m,
            client.vcpu,
            c_sock,
            Addr(client.buf.0 + 1024),
            64,
        )
        .unwrap();
    assert_eq!((rn, rip, rport), (8, SERVER_IP, 7));
    let mut back = vec![0u8; 8];
    client
        .m
        .read(VcpuId(0), Addr(client.buf.0 + 1024), &mut back)
        .unwrap();
    assert_eq!(&back, b"udp-pong");
}

#[test]
fn udp_echo_works_on_every_backend() {
    for backend in [
        BackendChoice::None,
        BackendChoice::MpkShared,
        BackendChoice::MpkSwitched,
        BackendChoice::Cheri,
        BackendChoice::VmRpc,
    ] {
        udp_echo_round_trip(backend);
    }
}

#[test]
fn udp_gates_charge_crossings_under_isolation() {
    let mut os = boot(BackendChoice::MpkShared);
    let sock = os.udp_bind(9).unwrap();
    let buf = os.alloc_shared_buf(256).unwrap();
    os.img.gates.reset_stats();
    os.img.write(buf, b"x").unwrap();
    os.udp_send_to(sock, buf, 1, 0x0a00_0002, 9).unwrap();
    // libc→net is a crossing; app→libc is direct (same compartment).
    assert_eq!(os.img.gates.stats().crossings, 1);
}

#[test]
fn udp_recv_on_empty_socket_would_block() {
    let mut os = boot(BackendChoice::None);
    let sock = os.udp_bind(9).unwrap();
    let buf = os.alloc_shared_buf(64).unwrap();
    assert!(matches!(
        os.udp_recv_from(sock, buf, 64),
        Err(flexos_net::stack::NetError::WouldBlock)
    ));
}
