//! Quantitative shape assertions against the paper's §4 claims.
//!
//! These are the regression tests for the reproduction: if a refactor
//! breaks a headline finding (a who-wins ordering, a crossover, a
//! magnitude band), these fail. Workload sizes are kept small; the full
//! sweeps live in `cargo run -p flexos-bench --bin reproduce`.

use flexos::build::{BackendChoice, Hypervisor};
use flexos_apps::iperf::{run_iperf, IperfParams};
use flexos_apps::redis::{run_redis, Mix, RedisParams};
use flexos_apps::{CompartmentModel, SchedKind};

fn iperf(params: IperfParams) -> f64 {
    run_iperf(&IperfParams {
        total_bytes: 256 * 1024,
        ..params
    })
    .mbps
}

fn redis(params: RedisParams) -> f64 {
    run_redis(&RedisParams { ops: 300, ..params })
        .expect("redis run")
        .mreq_per_s
}

// --- Figure 3 shapes -----------------------------------------------------------

#[test]
fn fig3_mpk_slowdown_is_2_to_3x_at_small_buffers_and_converges() {
    let base_small = iperf(IperfParams {
        recv_buf: 64,
        ..IperfParams::default()
    });
    let base_large = iperf(IperfParams {
        recv_buf: 16 * 1024,
        ..IperfParams::default()
    });
    for backend in [BackendChoice::MpkShared, BackendChoice::MpkSwitched] {
        let small = iperf(IperfParams {
            model: CompartmentModel::NwOnly,
            backend,
            recv_buf: 64,
            ..IperfParams::default()
        });
        let slowdown = base_small / small;
        assert!(
            (1.5..=3.5).contains(&slowdown),
            "{backend:?} small-buffer slowdown {slowdown:.2} outside the paper's 2-3x band"
        );
        let large = iperf(IperfParams {
            model: CompartmentModel::NwOnly,
            backend,
            recv_buf: 16 * 1024,
            ..IperfParams::default()
        });
        assert!(
            base_large / large < 1.15,
            "{backend:?} should be near-baseline at 16 KiB (got {:.2}x)",
            base_large / large
        );
    }
}

#[test]
fn fig3_sh_on_netstack_hurts_small_buffers_then_converges() {
    let cfg = |recv_buf| IperfParams {
        recv_buf,
        sh_on: vec!["lwip".into()],
        ..IperfParams::default()
    };
    let base_small = iperf(IperfParams {
        recv_buf: 64,
        ..IperfParams::default()
    });
    let base_large = iperf(IperfParams {
        recv_buf: 16 * 1024,
        ..IperfParams::default()
    });
    let sh_small = iperf(cfg(64));
    let sh_large = iperf(cfg(16 * 1024));
    let small_slowdown = base_small / sh_small;
    assert!(
        (1.5..=3.5).contains(&small_slowdown),
        "SH small: {small_slowdown:.2}x"
    );
    assert!(
        base_large / sh_large < 1.25,
        "SH large: {:.2}x",
        base_large / sh_large
    );
}

#[test]
fn fig3_vm_rpc_needs_much_larger_buffers_to_catch_up() {
    let xen_base = |recv_buf| {
        iperf(IperfParams {
            recv_buf,
            hypervisor: Hypervisor::Xen,
            ..IperfParams::default()
        })
    };
    let vm = |recv_buf| {
        iperf(IperfParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::VmRpc,
            hypervisor: Hypervisor::Xen,
            recv_buf,
            ..IperfParams::default()
        })
    };
    // Much slower at small buffers...
    assert!(xen_base(64) / vm(64) > 5.0);
    // ...still behind at 1 KiB where MPK already converged...
    assert!(xen_base(1024) / vm(1024) > 2.0);
    // ...and close only at large buffers (the paper's 32 KiB crossover).
    assert!(xen_base(64 * 1024) / vm(64 * 1024) < 1.6);
}

#[test]
fn fig3_xen_baseline_trails_kvm_baseline() {
    let kvm = iperf(IperfParams::default());
    let xen = iperf(IperfParams {
        hypervisor: Hypervisor::Xen,
        ..IperfParams::default()
    });
    assert!(xen < kvm);
}

// --- Table 1 shapes ---------------------------------------------------------------

#[test]
fn table1_per_component_sh_ordering_matches_the_paper() {
    let run = |sh_on: Vec<String>| {
        iperf(IperfParams {
            recv_buf: 8 * 1024,
            sh_on,
            ..IperfParams::default()
        })
    };
    let baseline = run(Vec::new());
    let sched = run(vec!["uksched".into()]);
    let net = run(vec!["lwip".into()]);
    let libc = run(vec!["libc".into()]);
    let all = run(["iperf", "libc", "ukalloc", "uknetdev", "lwip", "uksched"]
        .iter()
        .map(|s| s.to_string())
        .collect());
    // Paper: scheduler ~1%, NW ~6%, LibC ~2.3x, everything ~6x.
    assert!(
        baseline / sched < 1.08,
        "scheduler SH: {:.2}x",
        baseline / sched
    );
    assert!(
        (1.02..1.35).contains(&(baseline / net)),
        "NW SH: {:.2}x",
        baseline / net
    );
    assert!(
        (1.9..2.9).contains(&(baseline / libc)),
        "LibC SH: {:.2}x",
        baseline / libc
    );
    assert!(
        baseline / all > 3.5,
        "whole-system SH: {:.2}x",
        baseline / all
    );
    // Strict ordering.
    assert!(sched > net && net > libc && libc > all);
}

// --- Figure 4 shapes ---------------------------------------------------------------

#[test]
fn fig4_local_allocator_recovers_part_of_the_sh_cost() {
    let base = redis(RedisParams {
        mix: Mix::Set,
        ..RedisParams::default()
    });
    let sh = |dedicated| {
        redis(RedisParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::None,
            sh_on: vec!["lwip".into()],
            dedicated_allocators: dedicated,
            mix: Mix::Set,
            ..RedisParams::default()
        })
    };
    let global = base / sh(false);
    let local = base / sh(true);
    // Paper: ~1.45x with the global allocator, ~1.24x with a local one.
    assert!(
        (1.25..1.75).contains(&global),
        "global-alloc slowdown {global:.2}x"
    );
    assert!(
        (1.05..1.45).contains(&local),
        "local-alloc slowdown {local:.2}x"
    );
    assert!(
        global > local + 0.08,
        "the local allocator must visibly help"
    );
}

#[test]
fn fig4_verified_scheduler_stays_within_6_percent() {
    for mix in [Mix::Set, Mix::Get] {
        let coop = redis(RedisParams {
            mix,
            ..RedisParams::default()
        });
        let verified = redis(RedisParams {
            mix,
            sched: SchedKind::Verified,
            ..RedisParams::default()
        });
        let overhead = coop / verified - 1.0;
        assert!(
            (0.0..=0.08).contains(&overhead),
            "verified scheduler overhead {:.1}% ({mix:?})",
            overhead * 100.0
        );
    }
}

// --- Figure 5 shapes -----------------------------------------------------------------

#[test]
fn fig5_isolation_granularity_ordering() {
    let base = redis(RedisParams::default());
    let get = |model, backend| {
        redis(RedisParams {
            model,
            backend,
            ..RedisParams::default()
        })
    };
    let nw_sha = get(CompartmentModel::NwOnly, BackendChoice::MpkShared);
    let nw_sw = get(CompartmentModel::NwOnly, BackendChoice::MpkSwitched);
    let three_sha = get(CompartmentModel::NwSchedRest, BackendChoice::MpkShared);
    let three_sw = get(CompartmentModel::NwSchedRest, BackendChoice::MpkSwitched);

    // Paper: NW-only ≈ 17% slowdown.
    let nw_slowdown = base / nw_sha;
    assert!(
        (1.08..1.35).contains(&nw_slowdown),
        "NW-only: {nw_slowdown:.2}x"
    );
    // Isolating the scheduler too costs more; switched stacks cost more
    // than shared (paper: 1.4x vs 2.25x).
    assert!(three_sha < nw_sha);
    assert!(nw_sw < nw_sha);
    assert!(three_sw < three_sha);
    let three_sw_slowdown = base / three_sw;
    assert!(
        (1.3..2.6).contains(&three_sw_slowdown),
        "NW/Sched/Rest switched: {three_sw_slowdown:.2}x"
    );
}

#[test]
fn fig5_merging_nw_and_sched_does_not_help() {
    // The paper's standout finding, rooted in libc owning the semaphores.
    for backend in [BackendChoice::MpkShared, BackendChoice::MpkSwitched] {
        let separate = redis(RedisParams {
            model: CompartmentModel::NwSchedRest,
            backend,
            ..RedisParams::default()
        });
        let merged = redis(RedisParams {
            model: CompartmentModel::NwAndSchedRest,
            backend,
            ..RedisParams::default()
        });
        assert!(
            merged <= separate * 1.05,
            "{backend:?}: merging should not help (merged {merged:.3} vs separate {separate:.3})"
        );
    }
}

#[test]
fn fig5_overhead_shrinks_with_payload_size() {
    let slowdown = |payload| {
        let base = redis(RedisParams {
            payload,
            ..RedisParams::default()
        });
        let iso = redis(RedisParams {
            payload,
            model: CompartmentModel::NwSchedRest,
            backend: BackendChoice::MpkSwitched,
            ..RedisParams::default()
        });
        base / iso
    };
    let small = slowdown(5);
    let large = slowdown(500);
    assert!(
        large < small,
        "isolation overhead must shrink with payload (5B: {small:.2}x, 500B: {large:.2}x)"
    );
}

// --- §4 verified-scheduler microbenchmark ----------------------------------------------

#[test]
fn context_switch_latencies_match_the_paper() {
    use flexos_kernel::sched::{CoopScheduler, RunQueue, VerifiedScheduler};
    use flexos_machine::{cycles_to_nanos, CostTable};
    let costs = CostTable::default();
    let coop_ns = cycles_to_nanos(CoopScheduler::new().switch_cost(&costs));
    let verified_ns = cycles_to_nanos(VerifiedScheduler::new().switch_cost(&costs));
    assert!((coop_ns - 76.6).abs() < 1.0, "C scheduler: {coop_ns:.1} ns");
    assert!(
        (verified_ns - 218.6).abs() < 1.0,
        "verified: {verified_ns:.1} ns"
    );
}
