//! The CHERI backend extension: the same image, retargeted to
//! capability gates — ordering, enforcement, and drop-in behaviour.

use flexos::build::{plan, BackendChoice};
use flexos_apps::iperf::{run_iperf, IperfParams};
use flexos_apps::redis::{run_redis, RedisParams};
use flexos_apps::{evaluation_image, CompartmentModel, Os, SchedKind};
use flexos_machine::cap::{CapPerms, Capability, OType};

const SERVER_IP: u32 = 0x0a00_0001;

fn iperf(backend: BackendChoice, recv_buf: u64) -> f64 {
    let model = if backend == BackendChoice::None {
        CompartmentModel::Baseline
    } else {
        CompartmentModel::NwOnly
    };
    run_iperf(&IperfParams {
        model,
        backend,
        recv_buf,
        total_bytes: 256 * 1024,
        ..IperfParams::default()
    })
    .mbps
}

#[test]
fn cheri_sits_between_baseline_and_mpk() {
    let base = iperf(BackendChoice::None, 64);
    let cheri = iperf(BackendChoice::Cheri, 64);
    let mpk = iperf(BackendChoice::MpkShared, 64);
    assert!(
        base > cheri && cheri > mpk,
        "expected baseline ({base:.0}) > CHERI ({cheri:.0}) > MPK ({mpk:.0}) at 64 B"
    );
    // And it converges to baseline at large buffers like the others.
    let base_l = iperf(BackendChoice::None, 16 * 1024);
    let cheri_l = iperf(BackendChoice::Cheri, 16 * 1024);
    assert!(base_l / cheri_l < 1.05);
}

#[test]
fn cheri_images_run_the_full_workloads() {
    let r = run_redis(&RedisParams {
        model: CompartmentModel::NwOnly,
        backend: BackendChoice::Cheri,
        ops: 200,
        ..RedisParams::default()
    })
    .expect("redis run");
    assert!(r.ops >= 200);
    assert!(r.crossings > 0);
}

#[test]
fn cheri_enforces_compartment_reach() {
    let cfg = evaluation_image(
        "iperf",
        CompartmentModel::NwOnly,
        BackendChoice::Cheri,
        SchedKind::Coop,
    );
    let mut os = Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap();
    // From the app compartment, the net compartment's heap is out of
    // capability reach: the stray pointer faults.
    let net_heap = os.img.gates.ctx(os.roles.net).heap_base;
    assert!(os.img.write(net_heap, b"stray").is_err());
    // Crossing the capability gate grants the reach.
    let c_net = os.roles.net;
    let flexos_backends::BootImage { machine, gates, .. } = &mut os.img;
    gates
        .cross(machine, c_net, 0, 0, |m, rt| {
            m.write(rt.current_ctx().vcpu, net_heap, b"legit")
        })
        .unwrap();
}

#[test]
fn capability_monotonicity_survives_gate_composition() {
    // A caller derives an argument capability, seals it for the callee's
    // compartment; the callee can use exactly that much and nothing more.
    let cfg = evaluation_image(
        "iperf",
        CompartmentModel::NwOnly,
        BackendChoice::Cheri,
        SchedKind::Coop,
    );
    let mut os = Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap();
    let buf = os.alloc_shared_buf(256).unwrap();
    os.img.write(buf, b"argument-bytes").unwrap();

    let arg = Capability::root(buf, 256)
        .derive(0, 14, CapPerms::RO)
        .unwrap();
    let sealed = arg.seal(OType(42)).unwrap();
    // Sealed: unusable in transit.
    assert!(sealed.check_access(0, 1, false).is_err());
    let usable = sealed.unseal(OType(42)).unwrap();
    let vcpu = os.img.gates.ctx(os.roles.net).vcpu;
    let mut back = [0u8; 14];
    os.img
        .machine
        .read_via_cap(vcpu, &usable, 0, &mut back)
        .unwrap();
    assert_eq!(&back, b"argument-bytes");
    // Out of derived bounds: refused even inside the shared buffer.
    assert!(os
        .img
        .machine
        .read_via_cap(vcpu, &usable, 10, &mut back)
        .is_err());
}

#[test]
fn retargeting_is_a_one_line_change() {
    // The FlexOS pitch: the *same* ImageConfig, only the backend differs.
    for backend in [
        BackendChoice::None,
        BackendChoice::Cheri,
        BackendChoice::MpkShared,
        BackendChoice::VmRpc,
    ] {
        let cfg = evaluation_image("iperf", CompartmentModel::NwOnly, backend, SchedKind::Coop);
        let p = plan(cfg).unwrap();
        let os = Os::boot(p, SERVER_IP, 1).unwrap();
        assert_eq!(os.img.plan.config.backend, backend);
    }
}
