//! SMP lockstep suite: the deterministic SMP run queue is contracted to
//! be *invisible* — for any workload, any vCPU count must produce the
//! same outcomes, the same simulated cycle counts, the same gate
//! crossings and the same fault traces as the legacy single-queue
//! schedulers. The canonical interleave (every enqueue stamped with a
//! global sequence number; pop always takes the minimum across per-vCPU
//! deques) makes this provable per-step; this suite checks it
//! end-to-end over randomised iperf and Redis runs, with and without
//! injected chaos, at `vcpus` 2 and 4. The `smp-determinism` CI job
//! enforces the same contract on the shipped `reproduce` binary.

use flexos::build::BackendChoice;
use flexos_apps::iperf::{run_iperf, IperfParams};
use flexos_apps::redis::{run_redis, run_redis_traced, run_redis_with_stats, Mix, RedisParams};
use flexos_apps::{CompartmentModel, SchedKind};
use flexos_machine::{ChaosConfig, Schedule};
use flexos_net::nic::LinkChaos;
use proptest::prelude::*;

/// The vCPU widths compared against the single-queue reference.
const WIDTHS: &[usize] = &[2, 4];

fn arb_sched() -> impl Strategy<Value = SchedKind> {
    prop_oneof![Just(SchedKind::Coop), Just(SchedKind::Verified)]
}

fn arb_model_backend() -> impl Strategy<Value = (CompartmentModel, BackendChoice)> {
    prop_oneof![
        Just((CompartmentModel::Baseline, BackendChoice::None)),
        Just((CompartmentModel::NwOnly, BackendChoice::MpkShared)),
        Just((CompartmentModel::NwSchedRest, BackendChoice::MpkShared)),
        Just((CompartmentModel::NwOnly, BackendChoice::MpkSwitched)),
    ]
}

/// Everything observable about an iperf run. Cycles and mbps included:
/// the contract is bit-level, not shape-level. Harsh link chaos can
/// abort the run (e.g. the handshake never completes under heavy seeded
/// loss) — that abort is deterministic too, so the fate is part of the
/// fingerprint: a run that dies at vcpus=1 must die with the same
/// message at vcpus=4.
#[allow(clippy::type_complexity)]
fn iperf_fingerprint(params: &IperfParams) -> Result<(u64, u64, u64, u64, u64, u64, u64), String> {
    let params = params.clone();
    std::panic::catch_unwind(move || {
        let r = run_iperf(&params);
        (
            r.bytes,
            r.cycles,
            r.mbps.to_bits(),
            r.crossings,
            r.switches,
            r.frames_dropped,
            r.frames_corrupted,
        )
    })
    .map_err(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "opaque panic".into())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// iperf at vcpus 2/4 is bit-identical to the single-queue run —
    /// bytes, cycles, throughput bits, crossings, switches, and the
    /// chaos-driven frame drop/corruption counts (the fault trace of
    /// this workload).
    #[test]
    fn iperf_is_bit_identical_across_vcpu_counts(
        model_backend in arb_model_backend(),
        sched in arb_sched(),
        recv_buf in prop_oneof![Just(256u64), Just(1024), Just(16 * 1024)],
        loss in prop_oneof![Just(0u16), Just(50), Just(150)],
        seed in 0u64..1_000,
    ) {
        let (model, backend) = model_backend;
        let params = IperfParams {
            model,
            backend,
            sched,
            recv_buf,
            total_bytes: 96 * 1024,
            link_chaos: (loss > 0).then_some((
                LinkChaos { loss_per_mille: loss, ..Default::default() },
                seed,
            )),
            vcpus: 1,
            ..IperfParams::default()
        };
        let reference = iperf_fingerprint(&params);
        for &vcpus in WIDTHS {
            let smp = iperf_fingerprint(&IperfParams { vcpus, ..params.clone() });
            prop_assert_eq!(
                smp, reference,
                "iperf diverged at vcpus={} (model {:?}, backend {:?}, sched {:?}, \
                 buf {}, loss {}‰)",
                vcpus, model, backend, sched, recv_buf, loss
            );
        }
    }

    /// Redis at vcpus 2/4 matches the single-queue run down to the full
    /// telemetry snapshot JSON — per-pair crossings, latency histograms,
    /// scheduler activity, allocator counters, fault tables and event
    /// rings. One string compare covers every counter the tracer owns.
    #[test]
    fn redis_snapshot_is_identical_across_vcpu_counts(
        model_backend in arb_model_backend(),
        sched in arb_sched(),
        mix in prop_oneof![Just(Mix::Get), Just(Mix::Set)],
        payload in prop_oneof![Just(5usize), Just(500)],
        ops in 50u64..200,
    ) {
        let (model, backend) = model_backend;
        let params = RedisParams {
            model,
            backend,
            sched,
            mix,
            payload,
            ops,
            vcpus: 1,
            ..RedisParams::default()
        };
        let (r1, snap1) = run_redis_with_stats(&params).expect("reference run");
        let json1 = snap1.to_json();
        for &vcpus in WIDTHS {
            let (rn, snapn) =
                run_redis_with_stats(&RedisParams { vcpus, ..params.clone() })
                    .expect("smp run");
            prop_assert_eq!(
                (rn.ops, rn.cycles, rn.crossings, rn.mreq_per_s.to_bits()),
                (r1.ops, r1.cycles, r1.crossings, r1.mreq_per_s.to_bits()),
                "redis result diverged at vcpus={}", vcpus
            );
            prop_assert_eq!(
                &snapn.to_json(), &json1,
                "telemetry snapshot diverged at vcpus={}", vcpus
            );
        }
    }

    /// The span tracer rides the same canonical interleave: the full
    /// Chrome trace-event export (every slice, flow arrow and request
    /// span, timestamped in simulated cycles) and the per-request
    /// latency percentile block must be byte-identical at every vCPU
    /// width. Span shards are keyed by plan-determined vCPU assignment,
    /// never by which host queue ran the work.
    #[test]
    fn span_trace_is_byte_identical_across_vcpu_counts(
        model_backend in arb_model_backend(),
        mix in prop_oneof![Just(Mix::Get), Just(Mix::Set)],
        ops in 50u64..150,
    ) {
        let (model, backend) = model_backend;
        let params = RedisParams {
            model,
            backend,
            mix,
            ops,
            vcpus: 1,
            ..RedisParams::default()
        };
        let (r1, snap1, trace1) = run_redis_traced(&params).expect("reference run");
        let latency1 = format!("{:?}", snap1.latency);
        for &vcpus in WIDTHS {
            let (rn, snapn, tracen) =
                run_redis_traced(&RedisParams { vcpus, ..params.clone() })
                    .expect("smp run");
            prop_assert_eq!((rn.ops, rn.cycles), (r1.ops, r1.cycles));
            prop_assert_eq!(
                &format!("{:?}", snapn.latency), &latency1,
                "latency percentiles diverged at vcpus={}", vcpus
            );
            prop_assert_eq!(
                &tracen, &trace1,
                "span trace diverged at vcpus={}", vcpus
            );
        }
    }

    /// Injected machine chaos (doorbell loss on a VM RPC image) fails —
    /// or survives — identically at every vCPU count: same typed error
    /// or the same success numbers.
    #[test]
    fn redis_chaos_fate_is_identical_across_vcpu_counts(
        drop_nth in 2u64..6,
        ops in 40u64..120,
        seed in 0u64..100,
    ) {
        let params = RedisParams {
            model: CompartmentModel::NwOnly,
            backend: BackendChoice::VmRpc,
            mix: Mix::Get,
            ops,
            machine_chaos: Some(ChaosConfig {
                seed,
                notify_drop: Schedule::EveryNth(drop_nth),
                ..Default::default()
            }),
            vcpus: 1,
            ..RedisParams::default()
        };
        let reference = run_redis(&params)
            .map(|r| (r.ops, r.cycles, r.crossings, r.mreq_per_s.to_bits()));
        for &vcpus in WIDTHS {
            let smp = run_redis(&RedisParams { vcpus, ..params.clone() })
                .map(|r| (r.ops, r.cycles, r.crossings, r.mreq_per_s.to_bits()));
            prop_assert_eq!(
                &smp, &reference,
                "chaos fate diverged at vcpus={} (drop 1/{}, seed {})",
                vcpus, drop_nth, seed
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A live backend migration fired mid-run (PR 10's quiescence
    /// protocol) runs between executor steps, so it is part of the
    /// canonical interleave: the result tuple, the full telemetry
    /// snapshot — including the new `migrations` block — and the span
    /// trace must all be byte-identical at every vCPU width, for any
    /// target backend and any trigger point.
    #[test]
    fn live_migration_is_byte_identical_across_vcpu_counts(
        to in prop_oneof![
            Just(BackendChoice::VmRpc),
            Just(BackendChoice::MpkSwitched),
            Just(BackendChoice::None),
        ],
        after in 20u64..80,
        ops in 100u64..160,
    ) {
        let params = RedisParams {
            model: CompartmentModel::NwSchedRest,
            backend: BackendChoice::MpkShared,
            mix: Mix::Get,
            ops,
            migrate_to: Some((after, to)),
            vcpus: 1,
            ..RedisParams::default()
        };
        let (r1, snap1, trace1) = run_redis_traced(&params).expect("reference run");
        prop_assert!(
            snap1.migrations.completed >= 1,
            "migration never fired (after {}, ops {})", after, ops
        );
        let json1 = snap1.to_json();
        for &vcpus in WIDTHS {
            let (rn, snapn, tracen) =
                run_redis_traced(&RedisParams { vcpus, ..params.clone() })
                    .expect("smp run");
            prop_assert_eq!(
                (rn.ops, rn.cycles, rn.crossings, rn.mreq_per_s.to_bits()),
                (r1.ops, r1.cycles, r1.crossings, r1.mreq_per_s.to_bits()),
                "migrating redis result diverged at vcpus={} (to {:?}, after {})",
                vcpus, to, after
            );
            prop_assert_eq!(
                &snapn.to_json(), &json1,
                "telemetry snapshot diverged at vcpus={}", vcpus
            );
            prop_assert_eq!(
                &tracen, &trace1,
                "span trace diverged at vcpus={}", vcpus
            );
        }
    }
}

/// The migrating profile at unit-test speed, vcpus 1 vs 4: the MPK →
/// VM-RPC escalation lands between the same two scheduler steps at both
/// widths (bit-identical results and snapshot JSON), and the escalated
/// tail is visibly more expensive than a run that stays on MPK.
#[test]
fn ci_migration_profile_is_bit_identical_at_vcpus_4() {
    let params = RedisParams {
        model: CompartmentModel::NwSchedRest,
        backend: BackendChoice::MpkShared,
        mix: Mix::Get,
        ops: 600,
        migrate_to: Some((300, BackendChoice::VmRpc)),
        ..RedisParams::default()
    };
    let (r1, s1) = run_redis_with_stats(&params).expect("vcpus=1");
    let (r4, s4) = run_redis_with_stats(&RedisParams {
        vcpus: 4,
        ..params.clone()
    })
    .expect("vcpus=4");
    assert!(s1.migrations.completed >= 1, "migration never fired");
    assert_eq!(
        (r1.ops, r1.cycles, r1.crossings),
        (r4.ops, r4.cycles, r4.crossings)
    );
    assert_eq!(s1.to_json(), s4.to_json());
    let (stay, _) = run_redis_with_stats(&RedisParams {
        migrate_to: None,
        ..params
    })
    .expect("no migration");
    assert!(
        r1.cycles > stay.cycles,
        "VM-RPC tail should cost more: {} vs {}",
        r1.cycles,
        stay.cycles
    );
}

/// The exact profile the `smp-determinism` CI job pins with its recorded
/// baseline, asserted here at unit-test speed so a violation is caught
/// before CI: Redis GET / MPK shared / NW+sched-vs-rest, vcpus 1 vs 4.
#[test]
fn ci_profile_is_bit_identical_at_vcpus_4() {
    let params = RedisParams {
        model: CompartmentModel::NwSchedRest,
        backend: BackendChoice::MpkShared,
        mix: Mix::Get,
        ops: 1_000,
        ..RedisParams::default()
    };
    let (r1, s1) = run_redis_with_stats(&params).expect("vcpus=1");
    let (r4, s4) = run_redis_with_stats(&RedisParams { vcpus: 4, ..params }).expect("vcpus=4");
    assert_eq!(
        (r1.ops, r1.cycles, r1.crossings),
        (r4.ops, r4.cycles, r4.crossings)
    );
    assert_eq!(s1.to_json(), s4.to_json());
}

/// With `trace-off`, every span probe compiles to a no-op: the workload
/// still runs (same API, same results), but the trace export carries no
/// slices, no requests and no flow arrows, and the snapshot's latency
/// and ring-drop tables are empty. Paired with the normal-mode CI
/// baseline (whose simulated cycle counts did not move when the probes
/// landed), this is the "tracing is free when compiled out, and costs
/// zero simulated cycles when compiled in" contract.
#[cfg(feature = "trace-off")]
#[test]
fn trace_off_build_records_no_spans_and_still_runs() {
    let params = RedisParams {
        model: CompartmentModel::NwSchedRest,
        backend: BackendChoice::MpkShared,
        mix: Mix::Get,
        ops: 200,
        ..RedisParams::default()
    };
    let (result, snap, trace) = run_redis_traced(&params).expect("trace-off run");
    assert!(result.ops > 0 && result.cycles > 0);
    assert!(snap.latency.is_empty(), "latency rows under trace-off");
    assert!(
        !snap.ring_drops.iter().any(|r| r.subsystem == "spans"),
        "span ring stats under trace-off"
    );
    // The export is still structurally valid JSON, just empty of spans:
    // metadata only, no slices ("ph":"X"), requests ("b"/"e") or flows.
    for ph in ["\"ph\":\"X\"", "\"ph\":\"b\"", "\"ph\":\"s\""] {
        assert!(!trace.contains(ph), "{ph} present under trace-off");
    }
}
