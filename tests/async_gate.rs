//! Differential suite for the io_uring-style async gate rings.
//!
//! The same random call sequences `tests/backend_equiv.rs` pushes
//! through `call_lib_batch` are replayed here as submission-ring
//! descriptors (`submit_lib` → `call_lib_async` → `reap_lib`) on every
//! gate mechanism. The contract the rings ship under:
//!
//! * **Host-time only.** Submitting, flushing and reaping must cost the
//!   exact simulated cycles of the synchronous batched loop they
//!   replace — with overlap enabled *and* disabled — and must leave
//!   every gate counter and the batch histogram identical.
//! * **Same fault fates.** A call whose body faults consumes its
//!   descriptor without a completion (the sync path loses the return
//!   value too); completions posted before the fault stay reapable —
//!   that is the async payoff a sequential caller never gets.
//! * **Crash-consistent rings.** An enter fault (e.g. VM-RPC doorbell
//!   loss exhausting the retry budget) leaves every descriptor queued
//!   for retry; nothing is silently dropped and nothing panics.
//! * **SMP-invisible.** Extra idle vCPUs change nothing, cycles
//!   included, at any `--vcpus` width.

use flexos::build::{plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::gate::{GateMechanism, Sqe};
use flexos::spec::LibSpec;
use flexos_backends::{instantiate, BootImage};
use flexos_kernel::{GateRing, WireCqe, WireSqe};
use flexos_machine::{ChaosConfig, ChaosPlan, Fault, Schedule, VcpuId};
use proptest::prelude::*;

/// Every gate mechanism the build system can target.
const BACKENDS: &[BackendChoice] = &[
    BackendChoice::None,
    BackendChoice::MpkShared,
    BackendChoice::MpkSwitched,
    BackendChoice::VmRpc,
    BackendChoice::Cheri,
];

/// One call in a generated sequence (same shape as `backend_equiv`).
#[derive(Debug, Clone)]
struct CallOp {
    /// Cross into the scheduler compartment (a real gate crossing) or
    /// into lwip (same compartment as the app — a direct call).
    sched: bool,
    arg: u64,
    ret: u64,
    /// The call body returns a synthetic typed fault.
    fail: bool,
    /// The call body issues a nested crossing back the other way.
    nested: bool,
}

fn arb_ops() -> impl Strategy<Value = Vec<CallOp>> {
    prop::collection::vec(
        (any::<bool>(), 0u64..48, 0u64..24, 0u32..6, 0u32..4).prop_map(
            |(sched, arg, ret, fail, nested)| CallOp {
                sched,
                arg,
                ret,
                fail: fail == 0,
                nested: nested == 0,
            },
        ),
        1..10,
    )
}

/// Optional chaos: doorbell loss `EveryNth(2..=4)` and/or duplication
/// `EveryNth(2..=3)` — under 100% loss so the retry budget recovers.
fn arb_chaos() -> impl Strategy<Value = Option<(u64, u64)>> {
    prop::option::of((2u64..=4, 0u64..=3))
}

fn image(backend: BackendChoice) -> BootImage {
    image_smp(backend, 0)
}

fn image_smp(backend: BackendChoice, extra_vcpus: usize) -> BootImage {
    let cfg = ImageConfig::new("async-equiv", backend)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(LibraryConfig::new(
            LibSpec::unsafe_c("lwip"),
            LibRole::NetStack,
        ))
        .with_library(LibraryConfig::new(LibSpec::unsafe_c("app"), LibRole::App));
    let mut img = instantiate(plan(cfg).expect("plans")).expect("boots");
    img.machine.add_vcpus(flexos_machine::VmId(0), extra_vcpus);
    img
}

fn set_chaos(img: &mut BootImage, chaos: Option<(u64, u64)>) {
    if let Some((drop_nth, dup_nth)) = chaos {
        img.machine.set_chaos(ChaosPlan::new(ChaosConfig {
            seed: 11,
            notify_drop: Schedule::EveryNth(drop_nth),
            notify_dup: if dup_nth >= 2 {
                Schedule::EveryNth(dup_nth)
            } else {
                Schedule::Off
            },
            ..Default::default()
        }));
    }
}

/// Deterministic per-call value so every backend must compute the same
/// answer from the same inputs.
fn call_value(op: &CallOp, idx: usize) -> i64 {
    (op.arg * 31 + op.ret * 7) as i64 + idx as i64
}

/// Splits `ops` into maximal same-target runs — the chunk shape RESP
/// pipelining and iperf bursts produce.
fn chunks(ops: &[CallOp]) -> Vec<&[CallOp]> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < ops.len() {
        let sched = ops[i].sched;
        let mut end = i + 1;
        while end < ops.len() && ops[end].sched == sched {
            end += 1;
        }
        out.push(&ops[i..end]);
        i = end;
    }
    out
}

/// What the ring path should observably do per chunk, derived from the
/// ops alone: the values of every call before the first failing one
/// (those completions are posted and stay reapable), plus the fault
/// kind that consumed the failing descriptor, if any.
fn predict(ops: &[CallOp]) -> Vec<(Vec<i64>, Option<&'static str>)> {
    chunks(ops)
        .into_iter()
        .map(|chunk| {
            let cut = chunk.iter().position(|op| op.fail);
            let vals = chunk[..cut.unwrap_or(chunk.len())]
                .iter()
                .enumerate()
                .map(|(i, op)| call_value(op, i))
                .collect();
            (vals, cut.map(|_| "hardening-abort"))
        })
        .collect()
}

/// Counters that must not move between the sync and async drivers.
#[derive(Debug, Clone, PartialEq)]
struct Counters {
    crossings: u64,
    direct_calls: u64,
    bytes_marshalled: u64,
    batches: u64,
    batched_calls: u64,
}

fn counters(img: &BootImage) -> Counters {
    let stats = img.gates.stats();
    let (mut batches, mut batched_calls) = (0u64, 0u64);
    for mech in [
        GateMechanism::DirectCall,
        GateMechanism::MpkSharedStack,
        GateMechanism::MpkSwitchedStack,
        GateMechanism::VmRpc,
        GateMechanism::Cheri,
    ] {
        if let Some(h) = img.gates.trace().batch_hist(mech.label()) {
            batches += h.count();
            batched_calls += h.sum();
        }
    }
    Counters {
        crossings: stats.crossings,
        direct_calls: stats.direct_calls,
        bytes_marshalled: stats.bytes_marshalled,
        batches,
        batched_calls,
    }
}

/// The chunk body every driver runs: identical nested crossings,
/// synthetic faults, charges and return values.
fn chunk_body(
    m: &mut flexos_machine::Machine,
    rt: &mut flexos::gate::GateRuntime,
    op: &CallOp,
    idx: usize,
    nested_target: flexos::gate::CompartmentId,
) -> flexos_machine::Result<i64> {
    if op.nested {
        rt.cross(m, nested_target, 8, 8, |m, _| {
            m.charge(3);
            Ok(())
        })?;
    }
    if op.fail {
        return Err(Fault::HardeningAbort {
            mechanism: "async-equiv-test",
            reason: format!("synthetic fault at call {idx}"),
        });
    }
    m.charge(op.arg + 1);
    Ok(call_value(op, idx))
}

/// Runs `ops` through the synchronous batched path (`call_lib_batch`),
/// returning per-chunk fault kinds, the final counters and cycles —
/// the reference the ring path must cost exactly.
fn run_sync(
    backend: BackendChoice,
    ops: &[CallOp],
    chaos: Option<(u64, u64)>,
) -> (Vec<Option<&'static str>>, Counters, u64) {
    let mut img = image(backend);
    set_chaos(&mut img, chaos);
    let sched_c = img.compartment_of_lib("uksched_verified").expect("sched");
    let lwip_c = img.compartment_of_lib("lwip").expect("lwip");
    let t0 = img.machine.clock().cycles();
    let mut fates = Vec::new();
    for chunk in chunks(ops) {
        let mut calls = flexos::gate::CallVec::new();
        for op in chunk {
            calls.push(op.arg, op.ret);
        }
        let lib = if chunk[0].sched {
            "uksched_verified"
        } else {
            "lwip"
        };
        let nested_target = if chunk[0].sched { lwip_c } else { sched_c };
        let r = img.call_lib_batch(lib, &calls, |m, rt, idx| {
            chunk_body(m, rt, &chunk[idx], idx, nested_target)
        });
        fates.push(r.err().map(|e| e.kind()));
    }
    let cycles = img.machine.clock().cycles() - t0;
    let c = counters(&img);
    (fates, c, cycles)
}

/// Runs `ops` through the submission/completion rings: every chunk is
/// submitted whole, flushed once, and reaped. Returns the per-chunk
/// `(reaped values, fault kind)`, the final counters and cycles.
#[allow(clippy::type_complexity)]
fn run_async(
    backend: BackendChoice,
    ops: &[CallOp],
    chaos: Option<(u64, u64)>,
    overlap: bool,
    extra_vcpus: usize,
) -> (Vec<(Vec<i64>, Option<&'static str>)>, Counters, u64) {
    let mut img = image_smp(backend, extra_vcpus);
    set_chaos(&mut img, chaos);
    img.gates.set_overlap_enabled(overlap);
    let sched_c = img.compartment_of_lib("uksched_verified").expect("sched");
    let lwip_c = img.compartment_of_lib("lwip").expect("lwip");
    let t0 = img.machine.clock().cycles();
    let mut out = Vec::new();
    for chunk in chunks(ops) {
        let lib = if chunk[0].sched {
            "uksched_verified"
        } else {
            "lwip"
        };
        let target = if chunk[0].sched { sched_c } else { lwip_c };
        let nested_target = if chunk[0].sched { lwip_c } else { sched_c };
        for (i, op) in chunk.iter().enumerate() {
            img.submit_lib(lib, Sqe::new(op.arg, op.ret, i as u64))
                .expect("ring has room");
        }
        let r = img.call_lib_async(lib, |m, rt, sqe| {
            let idx = sqe.user_data as usize;
            chunk_body(m, rt, &chunk[idx], idx, nested_target)
        });
        let mut vals = Vec::new();
        while let Ok(cqe) = img.reap_lib(lib) {
            // Completions arrive in submission order with the original
            // descriptor cookie attached.
            assert_eq!(cqe.user_data, vals.len() as u64, "CQE order");
            vals.push(cqe.res);
        }
        // A sequential driver has no notion of "still queued" — drop
        // whatever the fault left pending before the next chunk.
        img.gates.cancel_pending(target);
        out.push((vals, r.err().map(|e| e.kind())));
    }
    let cycles = img.machine.clock().cycles() - t0;
    let c = counters(&img);
    (out, c, cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ring path is bit-identical in simulated time to the sync
    /// batched loop on every backend — overlap on AND off — while
    /// additionally delivering the completions a mid-chunk fault would
    /// have cost a sequential caller. Counters and the batch histogram
    /// must not move either.
    #[test]
    fn async_rings_cost_exactly_the_sync_batch(ops in arb_ops(), chaos in arb_chaos()) {
        let expected = predict(&ops);
        for &backend in BACKENDS {
            let (fates, sync_counters, sync_cycles) = run_sync(backend, &ops, chaos);
            for overlap in [true, false] {
                let (chunks, async_counters, async_cycles) =
                    run_async(backend, &ops, chaos, overlap, 0);
                prop_assert_eq!(
                    &chunks, &expected,
                    "{:?} overlap={} reaped values/fates diverged", backend, overlap
                );
                let async_fates: Vec<_> = chunks.iter().map(|(_, f)| *f).collect();
                prop_assert_eq!(
                    &async_fates, &fates,
                    "{:?} overlap={} fault fates diverged from sync", backend, overlap
                );
                prop_assert_eq!(
                    &async_counters, &sync_counters,
                    "{:?} overlap={} gate counters diverged from sync", backend, overlap
                );
                prop_assert_eq!(
                    async_cycles, sync_cycles,
                    "{:?} overlap={} simulated cycles diverged from sync", backend, overlap
                );
            }
        }
    }

    /// Extra idle vCPUs are invisible to the ring path: same reaped
    /// values, fault fates, counters AND simulated cycles at any
    /// `--vcpus` width.
    #[test]
    fn extra_vcpus_are_invisible_to_async_rings(ops in arb_ops(), chaos in arb_chaos()) {
        for &backend in BACKENDS {
            let (base, base_c, base_cycles) = run_async(backend, &ops, chaos, true, 0);
            let (smp, smp_c, smp_cycles) = run_async(backend, &ops, chaos, true, 1);
            prop_assert_eq!(&base, &smp, "{:?} outcome diverged with an extra vCPU", backend);
            prop_assert_eq!(&base_c, &smp_c, "{:?} counters diverged with an extra vCPU", backend);
            prop_assert_eq!(
                base_cycles, smp_cycles,
                "{:?} cycles diverged with an extra vCPU", backend
            );
        }
    }
}

/// Submitting past the ring depth is a typed `RingFull` error — never a
/// panic, never a silent drop — and the counter records the rejection.
#[test]
fn submit_past_ring_depth_is_a_typed_error() {
    let mut img = image(BackendChoice::MpkShared);
    for i in 0..flexos::gate::DEFAULT_RING_DEPTH {
        img.submit_lib("lwip", Sqe::new(8, 8, i as u64)).unwrap();
    }
    let err = img.submit_lib("lwip", Sqe::new(8, 8, 999)).unwrap_err();
    assert!(
        matches!(
            err,
            Fault::RingFull {
                ring: "gate-sq",
                ..
            }
        ),
        "{err:?}"
    );
    assert_eq!(img.gates.async_stats().sq_full, 1);
}

/// Reaping an empty completion queue is a typed `RingEmpty` error on
/// every backend — the async analogue of `-EAGAIN`.
#[test]
fn reap_from_empty_cq_is_a_typed_error_on_every_backend() {
    for &backend in BACKENDS {
        let mut img = image(backend);
        let err = img.reap_lib("lwip").unwrap_err();
        assert!(
            matches!(err, Fault::RingEmpty { ring: "gate-cq" }),
            "{backend:?}: {err:?}"
        );
        assert!(img.gates.async_stats().cq_empty >= 1);
    }
}

/// A `HardeningAbort` mid-flush consumes only the faulting descriptor:
/// completions posted before it stay reapable on every backend, the
/// untouched tail stays queued, and nothing panics.
#[test]
fn completions_survive_a_hardening_abort_on_every_backend() {
    for &backend in BACKENDS {
        let mut img = image(backend);
        for i in 0..4u64 {
            img.submit_lib("uksched_verified", Sqe::new(16, 8, i))
                .unwrap();
        }
        let err = img
            .call_lib_async("uksched_verified", |m, _rt, sqe| {
                if sqe.user_data == 2 {
                    return Err(Fault::HardeningAbort {
                        mechanism: "async-test",
                        reason: "synthetic".into(),
                    });
                }
                m.charge(5);
                Ok(sqe.user_data as i64 * 10)
            })
            .unwrap_err();
        assert_eq!(err.kind(), "hardening-abort", "{backend:?}");
        for want in 0..2i64 {
            let cqe = img.reap_lib("uksched_verified").unwrap();
            assert_eq!(
                (cqe.user_data, cqe.res),
                (want as u64, want * 10),
                "{backend:?}"
            );
        }
        assert!(matches!(
            img.reap_lib("uksched_verified").unwrap_err(),
            Fault::RingEmpty { .. }
        ));
        // Descriptor 2 was consumed by its fault; descriptor 3 was
        // never issued and stays queued.
        let sched_c = img.compartment_of_lib("uksched_verified").unwrap();
        assert_eq!(img.gates.sq_pending(sched_c), 1, "{backend:?}");
        assert_eq!(img.gates.cancel_pending(sched_c), 1, "{backend:?}");
    }
}

/// Total doorbell loss faults the VM-RPC flush *before* any descriptor
/// is issued — `GateTimeout` after the full retry budget — and leaves
/// the whole submission queue intact. Clearing the chaos and flushing
/// again completes every descriptor: the ring is the retry buffer.
#[test]
fn doorbell_loss_leaves_the_ring_intact_for_retry() {
    let mut img = image(BackendChoice::VmRpc);
    img.machine.set_chaos(ChaosPlan::new(ChaosConfig {
        seed: 1,
        notify_drop: Schedule::EveryNth(1),
        ..Default::default()
    }));
    for i in 0..4u64 {
        img.submit_lib("uksched_verified", Sqe::new(16, 8, i))
            .unwrap();
    }
    let err = img
        .call_lib_async("uksched_verified", |m, _rt, sqe| {
            m.charge(1);
            Ok(sqe.user_data as i64)
        })
        .unwrap_err();
    assert!(
        matches!(err, Fault::GateTimeout { attempts: 5, .. }),
        "{err:?}"
    );
    let sched_c = img.compartment_of_lib("uksched_verified").unwrap();
    assert_eq!(img.gates.sq_pending(sched_c), 4, "nothing issued");
    assert_eq!(img.gates.cq_ready(sched_c), 0, "nothing completed");

    // The doorbells come back; the queued descriptors drain untouched.
    img.machine
        .set_chaos(ChaosPlan::new(ChaosConfig::default()));
    let posted = img
        .call_lib_async("uksched_verified", |m, _rt, sqe| {
            m.charge(1);
            Ok(sqe.user_data as i64)
        })
        .unwrap();
    assert_eq!(posted, 4);
    for i in 0..4i64 {
        let cqe = img.reap_lib("uksched_verified").unwrap();
        assert_eq!((cqe.user_data, cqe.res), (i as u64, i));
    }
}

/// End-to-end shared-memory descriptor ring: the kernel `GateRing`
/// (SQ/CQ `MsgQueue` pair in the boot image's shared heap) round-trips
/// wire descriptors — span cookies included — between producer and
/// consumer with one tail publication per batch.
#[test]
fn kernel_gate_ring_round_trips_descriptors_in_shared_memory() {
    let mut img = image(BackendChoice::MpkShared);
    let depth = 8u64;
    let base = img
        .malloc_shared(GateRing::bytes_needed(depth), 8)
        .expect("shared ring fits");
    let ring = GateRing::init(&mut img.machine, VcpuId(0), base, depth).expect("ring init");
    let sqes: Vec<WireSqe> = (0..5)
        .map(|i| WireSqe {
            user_data: i,
            arg_bytes: 16 + i,
            ret_bytes: 8,
            span: 100 + i,
        })
        .collect();
    assert_eq!(
        ring.submit_many(&mut img.machine, VcpuId(0), &sqes)
            .unwrap(),
        5
    );
    let mut drained = Vec::new();
    let n = ring
        .drain_submissions(&mut img.machine, VcpuId(0), 16, &mut drained)
        .unwrap();
    assert_eq!(n, 5);
    assert_eq!(drained, sqes);
    let cqes: Vec<WireCqe> = drained
        .iter()
        .map(|s| WireCqe {
            user_data: s.user_data,
            res: s.arg_bytes as i64,
            span: s.span,
        })
        .collect();
    assert_eq!(
        ring.complete_many(&mut img.machine, VcpuId(0), &cqes)
            .unwrap(),
        5
    );
    let mut reaped = Vec::new();
    ring.reap_many(&mut img.machine, VcpuId(0), 16, &mut reaped)
        .unwrap();
    assert_eq!(reaped, cqes);
    assert_eq!(ring.sq_len(&mut img.machine, VcpuId(0)).unwrap(), 0);
    assert_eq!(ring.cq_len(&mut img.machine, VcpuId(0)).unwrap(), 0);
}
