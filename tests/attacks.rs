//! The attack matrix: FlexOS's central claim is that the *same* attack
//! is stopped by different mechanisms depending on the build-time
//! configuration — and lands in the unprotected baseline.
//!
//! | Attack | Baseline | MPK | VM | SH (ASAN/DFI/CFI/canary) |
//! |---|---|---|---|---|
//! | hijacked stack writes scheduler memory | lands | pkey fault | EPT fault | DFI abort |
//! | heap overflow | lands | — (same cpt) | — | ASAN redzone |
//! | use-after-free | lands | — | — | ASAN quarantine |
//! | control-flow hijack | lands | — | — | CFI abort |
//! | `wrpkru` forgery | n/a | guard fault | n/a | — |
//! | stack smash | lands | — | — | canary abort |

use flexos::build::{plan, BackendChoice};
use flexos::spec::{ShMechanism, ShSet};
use flexos_apps::{evaluation_image, gcc_sh, harden, CompartmentModel, Os, SchedKind};
use flexos_sh::inject;

const SERVER_IP: u32 = 0x0a00_0001;

fn boot_hardened(model: CompartmentModel, backend: BackendChoice, sh_lib: Option<&str>) -> Os {
    let mut cfg = evaluation_image("iperf", model, backend, SchedKind::Coop);
    if let Some(lib) = sh_lib {
        cfg = harden(cfg, lib);
    }
    Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap()
}

/// The hijacked network stack tries to overwrite the scheduler's run
/// queue (which lives in the "rest" compartment's heap).
fn netstack_attacks_scheduler(os: &mut Os) -> inject::AttackOutcome {
    let c_net = os.roles.net;
    let victim = os.img.gates.ctx(os.roles.sched).heap_base;
    let Os { img, sh, .. } = os;
    let flexos_backends::BootImage { machine, gates, .. } = img;
    gates
        .cross(machine, c_net, 0, 0, |m, rt| {
            let vcpu = rt.current_ctx().vcpu;
            inject::cross_component_write(m, sh, vcpu, c_net, victim, b"hijack")
        })
        .unwrap()
}

#[test]
fn baseline_lets_the_hijack_land() {
    let mut os = boot_hardened(CompartmentModel::Baseline, BackendChoice::None, None);
    let out = netstack_attacks_scheduler(&mut os);
    assert!(
        !out.was_caught(),
        "nothing should stop the write in the baseline"
    );
}

#[test]
fn mpk_catches_the_hijack_with_a_pkey_fault() {
    for backend in [BackendChoice::MpkShared, BackendChoice::MpkSwitched] {
        let mut os = boot_hardened(CompartmentModel::NwOnly, backend, None);
        let out = netstack_attacks_scheduler(&mut os);
        assert_eq!(
            out.caught_by().as_deref(),
            Some("pkey-violation"),
            "{backend:?}"
        );
    }
}

#[test]
fn vm_backend_catches_the_hijack_with_an_ept_fault() {
    let mut os = boot_hardened(CompartmentModel::NwOnly, BackendChoice::VmRpc, None);
    let out = netstack_attacks_scheduler(&mut os);
    assert_eq!(out.caught_by().as_deref(), Some("vm-violation"));
}

#[test]
fn dfi_catches_the_hijack_without_any_hardware_isolation() {
    // Single protection domain, but the network stack runs with DFI —
    // and on its own heap (dedicated allocators), so foreign writes have
    // a foreign destination to be caught at.
    let mut cfg = evaluation_image(
        "iperf",
        CompartmentModel::NwOnly,
        BackendChoice::None,
        SchedKind::Coop,
    );
    cfg.dedicated_allocators = true;
    for lib in &mut cfg.libraries {
        if lib.spec.name == "lwip" {
            lib.sh = ShSet::of([ShMechanism::Dfi]);
        }
    }
    let mut os = Os::boot(plan(cfg).unwrap(), SERVER_IP, 1).unwrap();
    let out = netstack_attacks_scheduler(&mut os);
    assert_eq!(out.caught_by().as_deref(), Some("hardening-abort"));
}

#[test]
fn asan_catches_heap_overflow_and_uaf_only_when_enabled() {
    // Hardened image: the net compartment has ASAN.
    let mut os = boot_hardened(CompartmentModel::NwOnly, BackendChoice::None, Some("lwip"));
    let c_net = os.roles.net;
    assert!(os.sh.policy(c_net).has(ShMechanism::Asan));
    let raw = os
        .img
        .heaps
        .alloc(&mut os.img.machine, c_net, 64 + 32, 16)
        .unwrap();
    let payload = os.sh.on_alloc(&mut os.img.machine, c_net, raw, 64);
    let vcpu = os.img.gates.ctx(c_net).vcpu;
    let out =
        inject::heap_overflow(&mut os.img.machine, &mut os.sh, vcpu, c_net, payload, 100).unwrap();
    assert!(out.was_caught(), "ASAN must catch the overflow");
    os.sh.on_free(&mut os.img.machine, c_net, payload).unwrap();
    let out =
        inject::use_after_free(&mut os.img.machine, &mut os.sh, vcpu, c_net, payload).unwrap();
    assert!(out.was_caught(), "ASAN must catch the UAF");

    // Unhardened image: the same overflow lands.
    let mut os = boot_hardened(CompartmentModel::NwOnly, BackendChoice::None, None);
    let c_net = os.roles.net;
    let buf = os
        .img
        .heaps
        .alloc(&mut os.img.machine, c_net, 64, 16)
        .unwrap();
    let vcpu = os.img.gates.ctx(c_net).vcpu;
    let out =
        inject::heap_overflow(&mut os.img.machine, &mut os.sh, vcpu, c_net, buf, 100).unwrap();
    assert!(!out.was_caught(), "no ASAN, no catch");
}

#[test]
fn cfi_catches_control_flow_hijack() {
    let mut os = boot_hardened(CompartmentModel::NwOnly, BackendChoice::None, None);
    let c_net = os.roles.net;
    os.sh.set_policy(c_net, ShSet::of([ShMechanism::Cfi]));
    os.sh
        .set_cfi_targets(c_net, ["sem_up".to_string(), "palloc".to_string()].into());
    let out =
        inject::control_flow_hijack(&mut os.img.machine, &mut os.sh, c_net, "mprotect_gadget")
            .unwrap();
    assert!(out.was_caught());
    let out =
        inject::control_flow_hijack(&mut os.img.machine, &mut os.sh, c_net, "palloc").unwrap();
    assert!(!out.was_caught(), "legitimate call-graph targets pass");
}

#[test]
fn pkru_forgery_is_caught_in_mpk_images() {
    let mut os = boot_hardened(CompartmentModel::NwOnly, BackendChoice::MpkShared, None);
    let vcpu = os.img.gates.ctx(os.roles.net).vcpu;
    let out = inject::pkru_forge(&mut os.img.machine, vcpu).unwrap();
    assert_eq!(out.caught_by().as_deref(), Some("unauthorized-pkru-write"));
}

#[test]
fn stack_smash_is_caught_by_canaries() {
    let mut os = boot_hardened(
        CompartmentModel::NwOnly,
        BackendChoice::MpkShared,
        Some("lwip"),
    );
    let c_net = os.roles.net;
    assert!(os.sh.policy(c_net).has(ShMechanism::StackProtector));
    let (stack, len) = os.img.alloc_stack(c_net).unwrap();
    os.sh.register_stack(c_net, stack, len);
    // Run the smash from inside the net compartment (its stack may be in
    // the shared domain under the shared-stack gate, but the canary is
    // what detects the smash).
    let out = {
        let Os { img, sh, .. } = &mut os;
        let flexos_backends::BootImage { machine, gates, .. } = img;
        gates
            .cross(machine, c_net, 0, 0, |m, rt| {
                let vcpu = rt.current_ctx().vcpu;
                inject::stack_smash(m, sh, vcpu, c_net, stack)
            })
            .unwrap()
    };
    assert!(out.was_caught());
    assert!(out.caught_by().unwrap().contains("hardening"));
}

#[test]
fn full_gcc_set_catches_ubsan_class_bugs() {
    let mut os = boot_hardened(CompartmentModel::NwOnly, BackendChoice::None, Some("lwip"));
    let c_net = os.roles.net;
    assert_eq!(os.sh.policy(c_net), &gcc_sh());
    // A length-computation overflow in a hardened packet parser.
    assert!(os
        .sh
        .checked_add(&mut os.img.machine, c_net, u64::MAX - 10, 20)
        .is_err());
    // The same bug in the unhardened app compartment silently wraps.
    let c_app = os.roles.app;
    assert_eq!(
        os.sh
            .checked_add(&mut os.img.machine, c_app, u64::MAX - 10, 20)
            .unwrap(),
        9
    );
}
