//! The full FlexOS pipeline, end to end: metadata → compatibility →
//! coloring → plan → instantiation → audit → exploration.

use flexos::build::{audit, plan, BackendChoice, ImageConfig, LibRole, LibraryConfig};
use flexos::compat::{enumerate_deployments, is_valid};
use flexos::explore::{
    candidates, fastest_meeting_security, max_security_within_budget, security_score, CallProfile,
};
use flexos::spec::{parse_with_name, print, suggest_sh, Analysis, LibSpec};
use flexos_backends::instantiate;
use flexos_machine::CostTable;

/// The paper's §2 walkthrough, executed end to end.
#[test]
fn paper_walkthrough_from_specs_to_booted_image() {
    // 1. Write the two specs from the paper's listings (via the DSL).
    let sched = LibSpec::verified_scheduler();
    let raw = parse_with_name("[Memory access] Read(*); Write(*)\n[Call] *", "rawlib").unwrap();

    // Round-trip them through the textual form.
    assert_eq!(flexos::spec::parse(&print(&sched)).unwrap(), sched);

    // 2. Enumerate deployments (plain + SH variants).
    let deployments = enumerate_deployments(&[
        (sched.clone(), Analysis::default()),
        (raw.clone(), Analysis::well_behaved()),
    ]);
    assert_eq!(deployments.len(), 2);
    for d in &deployments {
        assert!(is_valid(&d.graph.graph, &d.coloring));
    }
    // Best deployment: 1 compartment with the hardened variant.
    assert_eq!(deployments[0].num_compartments(), 1);
    assert_eq!(deployments[0].hardened_count(), 1);

    // 3. Build a plan for the un-hardened pair under MPK: two
    //    compartments, auto-derived.
    let cfg = ImageConfig::new("walkthrough", BackendChoice::MpkShared)
        .with_library(LibraryConfig::new(sched, LibRole::Scheduler))
        .with_library(LibraryConfig::new(raw, LibRole::Other));
    let p = plan(cfg).unwrap();
    assert_eq!(p.num_compartments, 2);
    assert!(
        audit(&p).is_empty(),
        "auto-derived plans are violation-free"
    );

    // 4. Boot it.
    let img = instantiate(p).unwrap();
    assert_eq!(img.gates.len(), 2);
    assert_eq!(img.machine.vm_count(), 1); // MPK: one address space
}

#[test]
fn hardened_variant_boots_into_a_single_compartment() {
    let raw = LibSpec::unsafe_c("rawlib");
    let sh = suggest_sh(&raw);
    let cfg = ImageConfig::new("hardened", BackendChoice::MpkShared)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(
            LibraryConfig::new(raw, LibRole::Other)
                .with_sh(sh)
                .with_analysis(Analysis::well_behaved()),
        );
    let p = plan(cfg).unwrap();
    assert_eq!(p.num_compartments, 1);
    let img = instantiate(p).unwrap();
    assert_eq!(img.gates.len(), 1);
}

#[test]
fn audit_flags_unsafe_manual_colocation_and_auto_fixes_it() {
    let mk = |manual: bool| {
        let mut sched = LibraryConfig::new(LibSpec::verified_scheduler(), LibRole::Scheduler);
        let mut raw = LibraryConfig::new(LibSpec::unsafe_c("rawlib"), LibRole::Other);
        if manual {
            sched = sched.in_compartment(0);
            raw = raw.in_compartment(0);
        }
        ImageConfig::new("audit", BackendChoice::MpkShared)
            .with_library(sched)
            .with_library(raw)
    };
    let forced = plan(mk(true)).unwrap();
    assert!(!audit(&forced).is_empty());
    assert!(!forced.report.warnings.is_empty());
    let auto = plan(mk(false)).unwrap();
    assert!(audit(&auto).is_empty());
}

#[test]
fn exploration_objectives_agree_with_measured_orderings() {
    let base = ImageConfig::new("dse", BackendChoice::None)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(
            LibraryConfig::new(LibSpec::unsafe_c("lwip"), LibRole::NetStack)
                .with_analysis(Analysis::well_behaved()),
        );
    let profile = CallProfile::default()
        .with_calls("lwip", "uksched_verified", 4)
        .with_work("lwip", 2000)
        .with_work("uksched_verified", 400);
    let costs = CostTable::default();
    let cands = candidates(
        &base,
        &[
            BackendChoice::None,
            BackendChoice::MpkShared,
            BackendChoice::MpkSwitched,
            BackendChoice::VmRpc,
        ],
        &profile,
        &costs,
    );
    assert!(!cands.is_empty());

    // A fully-secure config exists and the fastest one uses MPK shared
    // stacks (the cheapest isolating mechanism) or SH.
    let best = fastest_meeting_security(cands.clone(), 1.0).expect("a secure config exists");
    assert!((best.security - 1.0).abs() < f64::EPSILON);
    let vm_cost = cands
        .iter()
        .filter(|c| c.label.contains("VM RPC") && (c.security - 1.0).abs() < f64::EPSILON)
        .map(|c| c.cycles)
        .min()
        .expect("VM candidates exist");
    assert!(
        best.cycles < vm_cost,
        "objective B must not pick the most expensive gate"
    );

    // With an unlimited budget, objective A reaches full mitigation.
    let secure = max_security_within_budget(cands.clone(), u64::MAX).unwrap();
    assert!((secure.security - 1.0).abs() < f64::EPSILON);

    // Security scoring agrees with intuition: no isolation < isolation.
    let none = cands
        .iter()
        .find(|c| c.label == "function call")
        .expect("baseline candidate");
    assert!(none.security < 1.0);
    assert_eq!(security_score(&none.plan), none.security);
}

#[test]
fn api_wrappers_follow_the_trust_boundaries_of_the_plan() {
    use flexos::wrappers::generate_wrappers;
    // Same library set, two backends: the baseline elides every check,
    // the MPK split includes them at the boundary — §5 made executable.
    let mk = |backend| {
        let cfg = ImageConfig::new("wrap", backend)
            .with_library(LibraryConfig::new(
                LibSpec::verified_scheduler(),
                LibRole::Scheduler,
            ))
            .with_library(LibraryConfig::new(
                LibSpec::unsafe_c("rawlib"),
                LibRole::Other,
            ));
        plan(cfg).unwrap()
    };
    let baseline = generate_wrappers(&mk(BackendChoice::None));
    assert_eq!(
        baseline.enabled_count(),
        0,
        "one trust domain: checks elided"
    );
    let split = generate_wrappers(&mk(BackendChoice::MpkShared));
    assert_eq!(
        split.enabled_count(),
        3,
        "cross-domain callers: checks included"
    );
    let w = split.get("uksched_verified", "thread_add").unwrap();
    assert!(w.checks_enabled());
    assert_eq!(w.preconditions, vec!["thread not already added"]);
}

#[test]
fn inferred_metadata_flows_through_the_whole_pipeline() {
    use flexos::spec::{
        infer_analysis, infer_spec, BehaviorTrace, GrantKind, ObservedRegion, Region,
    };
    // Trace a well-behaved run of a to-be-ported library…
    let mut t = BehaviorTrace::new("ported_lib");
    t.read(ObservedRegion::Own)
        .read(ObservedRegion::Shared)
        .write(ObservedRegion::Own)
        .write(ObservedRegion::Shared)
        .call("alloc", "malloc")
        .entered("do_work")
        .inbound(GrantKind::Read(Region::Own))
        .inbound(GrantKind::Read(Region::Shared))
        .inbound(GrantKind::Write(Region::Shared));
    // …infer its metadata, plan, and boot.
    let cfg = ImageConfig::new("inferred", BackendChoice::MpkShared)
        .with_library(LibraryConfig::new(
            LibSpec::verified_scheduler(),
            LibRole::Scheduler,
        ))
        .with_library(
            LibraryConfig::new(infer_spec(&t), LibRole::Other).with_analysis(infer_analysis(&t)),
        )
        .with_library(LibraryConfig::new(
            LibSpec::unsafe_c("rawlib"),
            LibRole::Other,
        ));
    let p = plan(cfg).unwrap();
    // Well-behaved inferred spec co-locates with the verified scheduler;
    // the raw library is split off.
    assert_eq!(p.num_compartments, 2);
    assert!(audit(&p).is_empty());
    let img = instantiate(p).unwrap();
    assert_eq!(img.gates.len(), 2);
}

#[test]
fn sixteen_library_image_plans_and_boots() {
    // Scale check: a realistic unikernel has dozens of micro-libs.
    let mut cfg = ImageConfig::new("big", BackendChoice::MpkShared);
    for i in 0..16 {
        let lib = if i % 4 == 0 {
            let mut s = LibSpec::verified_scheduler();
            s.name = format!("safe{i}");
            LibraryConfig::new(s, LibRole::Other)
        } else {
            LibraryConfig::new(LibSpec::unsafe_c(format!("lib{i}")), LibRole::Other)
        };
        cfg = cfg.with_library(lib);
    }
    let p = plan(cfg).unwrap();
    // Safe libs conflict with unsafe ones: 2 compartments suffice (all
    // unsafe libs are mutually compatible).
    assert_eq!(p.num_compartments, 2);
    assert!(audit(&p).is_empty());
    let img = instantiate(p).unwrap();
    assert_eq!(img.gates.len(), 2);
}
